// Package fleet serves several independently tuned models and several
// tenant classes over one shared set of simulated GPU workers — the
// deployment shape of production recommendation fleets, where interactive
// ranking, batch re-scoring and experimental models co-locate on the same
// accelerators. It owns the three concerns single-model serving
// (internal/trace) does not have:
//
//   - placement: which workers each model may run on (packed, spread or
//     dedicated, with a load-aware rebalancing hook);
//   - admission: which arrival enters the shared queue and which queued
//     request dispatches next (pluggable AdmissionPolicy; the default is
//     strict priority classes with earliest-deadline-first dispatch within
//     a class, per-tenant queue quotas and load-aware early shedding, and
//     WeightedFair replaces strict priority with deficit-round-robin so no
//     positively weighted class can be starved);
//   - accounting: per-model and per-tenant metrics, plus the cross-model
//     interference view (sojourn inflation against each model served alone
//     on its own workers).
//
// Supervised models keep their full continuous-serving semantics — drift
// detection, background re-tunes booked on their placed workers, hot-swaps,
// canary rollbacks — through trace.LoopControl, the per-admission control
// extracted from trace.Supervisor.Run. Like the single-model engine, the
// replay is exact and deterministic: the same stream, models, tenants and
// configuration always produce the same Report.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Pool serves a fleet of models and tenants over shared simulated GPU
// workers. Create it with NewPool, then replay streams with Serve. A Pool is
// safe to reuse across Serve calls; calls are serialized per supervised
// model by the supervisors' own run locks.
type Pool struct {
	cfg     Config
	models  []Model
	tenants []TenantSpec
	policy  AdmissionPolicy
	initial Assignment
	// reserved is the count of exclusively reserved workers under
	// packed/spread placement: worker ids [0, reserved) belong to exactly one
	// model each (assign carves them lowest-index-first in model order). The
	// autoscaler never drains them.
	reserved int
	// reserves caches each model's Reserve floor for rebalance validation.
	reserves []int
}

// NewPool validates the configuration and builds the pool.
func NewPool(cfg Config, models []Model, tenants []TenantSpec) (*Pool, error) {
	if err := cfg.Validate(len(models), len(tenants)); err != nil {
		return nil, err
	}
	seenSv := make(map[*trace.Supervisor]string)
	reserves := make([]int, len(models))
	totalRes := 0
	maxClass := 0
	for i := range models {
		if err := models[i].Validate(); err != nil {
			return nil, err
		}
		if sv := models[i].Supervisor; sv != nil {
			if prev, dup := seenSv[sv]; dup {
				return nil, fmt.Errorf("fleet: models %s and %s share one supervisor; each supervised model needs its own", prev, models[i].Name)
			}
			seenSv[sv] = models[i].Name
		}
		if models[i].Reserve > 0 && cfg.Placement == PlacementDedicated {
			return nil, fmt.Errorf("fleet: model %s: Reserve needs packed or spread placement (dedicated already partitions the pool)", models[i].Name)
		}
		reserves[i] = models[i].Reserve
		totalRes += models[i].Reserve
		if len(models[i].ClassScale) > maxClass {
			maxClass = len(models[i].ClassScale)
		}
	}
	if len(cfg.ClassNames) > 0 && maxClass > len(cfg.ClassNames) {
		return nil, fmt.Errorf("fleet: a model's ClassScale covers %d classes, pool names only %d", maxClass, len(cfg.ClassNames))
	}
	for i := range tenants {
		if err := tenants[i].Validate(); err != nil {
			return nil, err
		}
	}
	initial, err := assign(cfg.Placement, len(models), cfg.Queue.EffectiveWorkers(), reserves)
	if err != nil {
		return nil, err
	}
	policy := cfg.Admission
	if policy == nil {
		policy = NewPriorityEDF(tenants, cfg.ShedFraction)
	}
	if cfg.Placement == PlacementDedicated {
		totalRes = 0
	}
	return &Pool{
		cfg:      cfg,
		models:   append([]Model(nil), models...),
		tenants:  append([]TenantSpec(nil), tenants...),
		policy:   policy,
		initial:  initial,
		reserved: totalRes,
		reserves: reserves,
	}, nil
}

// classScale returns model m's service-time multiplier on a worker of the
// given class; 1 for classes past the model's ClassScale.
func (p *Pool) classScale(m, class int) float64 {
	if cs := p.models[m].ClassScale; class < len(cs) {
		return cs[class]
	}
	return 1
}

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Policy returns the admission policy shaping the pool.
func (p *Pool) Policy() AdmissionPolicy { return p.policy }

// InitialAssignment returns a copy of the strategy's initial model-to-worker
// assignment.
func (p *Pool) InitialAssignment() Assignment { return p.initial.clone() }

// qentry is one queued admission.
type qentry struct {
	id       int // admission id = sorted stream position
	arrival  float64
	deadline float64
	size     int
	model    int
	tenant   int
	prio     int
	gen      int
}

// fleetSplit tracks an in-flight split request until its last chunk lands.
type fleetSplit struct {
	remaining int
	size      int     // the parent request's full size
	arrival   float64 // the parent request's arrival (chunk arrivals move on preemption)
	end       float64 // latest chunk completion so far
	service   float64 // summed chunk service time
	firstDisp float64 // first chunk's dispatch time
	worker    int     // worker of the last-dispatched chunk
}

// poolRun is the mutable state of one replay.
type poolRun struct {
	p   *Pool
	asg Assignment

	free, busy, tune []float64 // per worker
	served           []int     // per worker
	class            []int     // per worker device class (Config.WorkerClasses)
	tuneByModel      []float64
}

// modelOccupier books one model's background work (its re-tunes) on the
// least-loaded worker currently placed for that model, implementing
// trace.Occupier.
type modelOccupier struct {
	run   *poolRun
	model int
}

func (o *modelOccupier) Occupy(now, dur float64) (worker int, start, end float64) {
	st := o.run
	workers := st.asg[o.model]
	// A model with reserved workers books its tunes on them first: the point
	// of a reservation is a dedicated spare, so background work lands there
	// instead of contending on the shared pool.
	if st.p.reserves[o.model] > 0 {
		if excl := st.exclusiveWorkers(o.model); len(excl) > 0 {
			workers = excl
		}
	}
	best := workers[0]
	for _, w := range workers[1:] {
		if st.free[w] < st.free[best] {
			best = w
		}
	}
	start = st.free[best]
	if now > start {
		start = now
	}
	end = start + dur
	st.free[best] = end
	st.tune[best] += dur
	st.tuneByModel[o.model] += dur
	return best, start, end
}

// exclusiveWorkers returns the workers in model m's current placement that
// appear in no other model's row — its reserved spares under the live
// assignment (a rebalance may reshape the rows, but validateReserves keeps
// the floor).
func (st *poolRun) exclusiveWorkers(m int) []int {
	var out []int
	for _, w := range st.asg[m] {
		shared := false
		for n := range st.asg {
			if n == m {
				continue
			}
			if placedOn(st.asg, n, w) {
				shared = true
				break
			}
		}
		if !shared {
			out = append(out, w)
		}
	}
	return out
}

// arrivalOrder mirrors trace.arrivalOrder for fleet streams: a stable
// arrival sort plus the sorted-position -> caller-index mapping (nil when
// already sorted).
func arrivalOrder(reqs []Request) ([]Request, []int) {
	sorted := true
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			sorted = false
			break
		}
	}
	if sorted {
		return reqs, nil
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	out := make([]Request, len(reqs))
	for pos, idx := range order {
		out[pos] = reqs[idx]
	}
	return out, order
}

func originalIndex(order []int, pos int) int {
	if order == nil {
		return pos
	}
	return order[pos]
}

// deadlineOf resolves a request's absolute deadline: its own, then the
// tenant default, then the pool default; +Inf when none applies.
func (p *Pool) deadlineOf(r Request) float64 {
	d := r.Deadline
	if d == 0 {
		d = p.tenants[r.Tenant].Deadline
	}
	if d == 0 {
		d = p.cfg.Queue.Deadline
	}
	if d == 0 {
		return math.Inf(1)
	}
	return r.Arrival + d
}

// betterWorker reports whether worker w beats worker best for a dispatch at
// equal earliest-start time, under the pool's placement strategy: packed and
// dedicated consolidate onto the lowest index, spread balances onto the
// least-occupied worker.
func (st *poolRun) betterWorker(w, best int) bool {
	if st.p.cfg.Placement == PlacementSpread {
		ow, ob := st.busy[w]+st.tune[w], st.busy[best]+st.tune[best]
		if ow != ob {
			return ow < ob
		}
	}
	return w < best
}

// Serve replays the fleet stream and returns the exact virtual-time Report.
// Out-of-order input is sorted on entry; all per-request slices stay aligned
// with the caller's indices. Supervised models' drift control runs inside
// the replay (their swap histories land in ModelReports), and each
// supervisor's metrics snapshot is installed as if Run had been called.
//
// Serve is a thin batch driver over the incremental Live engine: Begin,
// Admit every request in arrival order, Close. A live gateway session runs
// the identical code path one arrival at a time, which is what makes a
// recorded session replay bit-identically through Serve.
func (p *Pool) Serve(reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("fleet: empty request stream")
	}
	for i, r := range reqs {
		if err := p.validateRequest(i, r); err != nil {
			return nil, err
		}
	}
	sorted, order := arrivalOrder(reqs)
	l := p.Begin()
	for i := range sorted {
		if _, _, err := l.Admit(sorted[i]); err != nil {
			l.Abort()
			return nil, err
		}
	}
	rep, _, err := l.closeWith(reqs, order)
	if err != nil {
		l.Abort()
		return nil, err
	}
	return rep, nil
}

// placedOn reports whether model m may run on worker w under asg.
func placedOn(asg Assignment, m, w int) bool {
	for _, x := range asg[m] {
		if x == w {
			return true
		}
	}
	return false
}

// modelReport builds model m's single-model view of a fleet run: its own
// requests in caller order, with sojourns, outcomes (shed causes carried
// through one-for-one), generation stamps and a trace.Metrics carrying the
// model's latency histogram and tune time.
func (p *Pool) modelReport(m int, reqs []Request, rep *Report, tuneBusy float64) *trace.Report {
	var sojourns []float64
	var outcomes []trace.Outcome
	var gens []int
	tm := &trace.Metrics{Latency: p.cfg.histogram(), TuneBusy: tuneBusy}
	firstArr, lastEnd := math.Inf(1), math.Inf(-1)
	var served []float64
	var totalService float64
	for i, r := range reqs {
		if r.Model != m {
			continue
		}
		sojourns = append(sojourns, rep.Sojourn[i])
		gens = append(gens, rep.Generations[i])
		if r.Arrival < firstArr {
			firstArr = r.Arrival
		}
		switch rep.Outcomes[i] {
		case OutcomeServed, OutcomeSplit:
			end := rep.Dispatch[i] + rep.Service[i]
			if rep.Outcomes[i] == OutcomeSplit {
				outcomes = append(outcomes, trace.OutcomeSplit)
				tm.SplitServed++
				// A split's chunks interleave with other work, so its end is
				// not dispatch+service; the sojourn carries it exactly.
				end = r.Arrival + rep.Sojourn[i]
			} else {
				outcomes = append(outcomes, trace.OutcomeServed)
			}
			tm.Served++
			tm.Latency.Observe(rep.Sojourn[i])
			served = append(served, rep.Sojourn[i])
			totalService += rep.Service[i]
			if end > lastEnd {
				lastEnd = end
			}
			if end > p.deadlineOf(r) {
				tm.Timeouts++
			}
		case OutcomeShedDeadline:
			outcomes = append(outcomes, trace.OutcomeShedDeadline)
			tm.DeadlineSheds++
		case OutcomeShedQuota:
			// Shed causes survive the translation one-for-one: a per-model
			// trace view must not misreport why requests were dropped.
			outcomes = append(outcomes, trace.OutcomeShedQuota)
			tm.QuotaSheds++
		case OutcomeShedLoad:
			outcomes = append(outcomes, trace.OutcomeShedLoad)
			tm.LoadSheds++
		default:
			outcomes = append(outcomes, trace.OutcomeShedQueue)
			tm.QueueSheds++
		}
	}
	var q trace.Quantiler
	p50, p95, p99 := q.P50P95P99(served)
	out := &trace.Report{
		Result: trace.Result{
			Sojourn: sojourns,
			Served:  len(served),
			P50:     p50,
			P95:     p95,
			P99:     p99,
		},
		Outcomes:    outcomes,
		Generations: gens,
		Metrics:     tm,
	}
	if len(served) > 0 {
		out.MeanService = totalService / float64(len(served))
	}
	if !math.IsInf(firstArr, 1) && !math.IsInf(lastEnd, -1) {
		tm.Makespan = lastEnd - firstArr
		if tm.Makespan < 0 {
			tm.Makespan = 0
		}
	}
	return out
}

// Interference quantifies cross-model contention in a fleet run: for each
// model, the ratio of its mean served sojourn in rep to the mean sojourn of
// the same requests — with the exact service times the fleet run resolved —
// replayed alone by least-loaded dispatch on the model's initially assigned
// workers. A ratio near 1 means co-location cost the model nothing
// (dedicated placement should sit here); above 1 is the sojourn inflation
// its neighbors caused. NaN for a model that served nothing.
func (p *Pool) Interference(reqs []Request, rep *Report) ([]float64, error) {
	if len(rep.Sojourn) != len(reqs) || len(rep.Service) != len(reqs) {
		return nil, fmt.Errorf("fleet: report does not match the request stream (%d sojourns, %d requests)", len(rep.Sojourn), len(reqs))
	}
	// Arrival order over caller indices, matching the replay.
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return reqs[idx[a]].Arrival < reqs[idx[b]].Arrival })

	out := make([]float64, len(p.models))
	for m := range p.models {
		kM := len(p.initial[m])
		free := make([]float64, kM)
		var fleetSum, soloSum float64
		count := 0
		for _, i := range idx {
			r := reqs[i]
			if r.Model != m || rep.Outcomes[i] != OutcomeServed {
				continue
			}
			best := 0
			for g := 1; g < kM; g++ {
				if free[g] < free[best] {
					best = g
				}
			}
			start := math.Max(r.Arrival, free[best])
			free[best] = start + rep.Service[i]
			soloSum += free[best] - r.Arrival
			fleetSum += rep.Sojourn[i]
			count++
		}
		if count == 0 || soloSum == 0 {
			out[m] = math.NaN()
			continue
		}
		out[m] = fleetSum / soloSum
	}
	return out, nil
}
