// Package fleet serves several independently tuned models and several
// tenant classes over one shared set of simulated GPU workers — the
// deployment shape of production recommendation fleets, where interactive
// ranking, batch re-scoring and experimental models co-locate on the same
// accelerators. It owns the three concerns single-model serving
// (internal/trace) does not have:
//
//   - placement: which workers each model may run on (packed, spread or
//     dedicated, with a load-aware rebalancing hook);
//   - admission: which arrival enters the shared queue and which queued
//     request dispatches next (pluggable AdmissionPolicy; the default is
//     strict priority classes with earliest-deadline-first dispatch within
//     a class, per-tenant queue quotas and load-aware early shedding, and
//     WeightedFair replaces strict priority with deficit-round-robin so no
//     positively weighted class can be starved);
//   - accounting: per-model and per-tenant metrics, plus the cross-model
//     interference view (sojourn inflation against each model served alone
//     on its own workers).
//
// Supervised models keep their full continuous-serving semantics — drift
// detection, background re-tunes booked on their placed workers, hot-swaps,
// canary rollbacks — through trace.LoopControl, the per-admission control
// extracted from trace.Supervisor.Run. Like the single-model engine, the
// replay is exact and deterministic: the same stream, models, tenants and
// configuration always produce the same Report.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/trace"
)

// Pool serves a fleet of models and tenants over shared simulated GPU
// workers. Create it with NewPool, then replay streams with Serve. A Pool is
// safe to reuse across Serve calls; calls are serialized per supervised
// model by the supervisors' own run locks.
type Pool struct {
	cfg     Config
	models  []Model
	tenants []TenantSpec
	policy  AdmissionPolicy
	initial Assignment
}

// NewPool validates the configuration and builds the pool.
func NewPool(cfg Config, models []Model, tenants []TenantSpec) (*Pool, error) {
	if err := cfg.Validate(len(models), len(tenants)); err != nil {
		return nil, err
	}
	seenSv := make(map[*trace.Supervisor]string)
	for i := range models {
		if err := models[i].Validate(); err != nil {
			return nil, err
		}
		if sv := models[i].Supervisor; sv != nil {
			if prev, dup := seenSv[sv]; dup {
				return nil, fmt.Errorf("fleet: models %s and %s share one supervisor; each supervised model needs its own", prev, models[i].Name)
			}
			seenSv[sv] = models[i].Name
		}
	}
	for i := range tenants {
		if err := tenants[i].Validate(); err != nil {
			return nil, err
		}
	}
	initial, err := assign(cfg.Placement, len(models), cfg.Queue.EffectiveWorkers())
	if err != nil {
		return nil, err
	}
	policy := cfg.Admission
	if policy == nil {
		policy = NewPriorityEDF(tenants, cfg.ShedFraction)
	}
	return &Pool{
		cfg:     cfg,
		models:  append([]Model(nil), models...),
		tenants: append([]TenantSpec(nil), tenants...),
		policy:  policy,
		initial: initial,
	}, nil
}

// Config returns the pool configuration.
func (p *Pool) Config() Config { return p.cfg }

// Policy returns the admission policy shaping the pool.
func (p *Pool) Policy() AdmissionPolicy { return p.policy }

// InitialAssignment returns a copy of the strategy's initial model-to-worker
// assignment.
func (p *Pool) InitialAssignment() Assignment { return p.initial.clone() }

// qentry is one queued admission.
type qentry struct {
	id       int // admission id = sorted stream position
	arrival  float64
	deadline float64
	size     int
	model    int
	tenant   int
	prio     int
	gen      int
}

// fleetSplit tracks an in-flight split request until its last chunk lands.
type fleetSplit struct {
	remaining int
	size      int     // the parent request's full size
	end       float64 // latest chunk completion so far
	service   float64 // summed chunk service time
	firstDisp float64 // first chunk's dispatch time
	worker    int     // worker of the last-dispatched chunk
}

// poolRun is the mutable state of one replay.
type poolRun struct {
	p   *Pool
	asg Assignment

	free, busy, tune []float64 // per worker
	served           []int     // per worker
	tuneByModel      []float64
}

// modelOccupier books one model's background work (its re-tunes) on the
// least-loaded worker currently placed for that model, implementing
// trace.Occupier.
type modelOccupier struct {
	run   *poolRun
	model int
}

func (o *modelOccupier) Occupy(now, dur float64) (worker int, start, end float64) {
	st := o.run
	workers := st.asg[o.model]
	best := workers[0]
	for _, w := range workers[1:] {
		if st.free[w] < st.free[best] {
			best = w
		}
	}
	start = st.free[best]
	if now > start {
		start = now
	}
	end = start + dur
	st.free[best] = end
	st.tune[best] += dur
	st.tuneByModel[o.model] += dur
	return best, start, end
}

// arrivalOrder mirrors trace.arrivalOrder for fleet streams: a stable
// arrival sort plus the sorted-position -> caller-index mapping (nil when
// already sorted).
func arrivalOrder(reqs []Request) ([]Request, []int) {
	sorted := true
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			sorted = false
			break
		}
	}
	if sorted {
		return reqs, nil
	}
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return reqs[order[a]].Arrival < reqs[order[b]].Arrival
	})
	out := make([]Request, len(reqs))
	for pos, idx := range order {
		out[pos] = reqs[idx]
	}
	return out, order
}

func originalIndex(order []int, pos int) int {
	if order == nil {
		return pos
	}
	return order[pos]
}

// deadlineOf resolves a request's absolute deadline: its own, then the
// tenant default, then the pool default; +Inf when none applies.
func (p *Pool) deadlineOf(r Request) float64 {
	d := r.Deadline
	if d == 0 {
		d = p.tenants[r.Tenant].Deadline
	}
	if d == 0 {
		d = p.cfg.Queue.Deadline
	}
	if d == 0 {
		return math.Inf(1)
	}
	return r.Arrival + d
}

// betterWorker reports whether worker w beats worker best for a dispatch at
// equal earliest-start time, under the pool's placement strategy: packed and
// dedicated consolidate onto the lowest index, spread balances onto the
// least-occupied worker.
func (st *poolRun) betterWorker(w, best int) bool {
	if st.p.cfg.Placement == PlacementSpread {
		ow, ob := st.busy[w]+st.tune[w], st.busy[best]+st.tune[best]
		if ow != ob {
			return ow < ob
		}
	}
	return w < best
}

// Serve replays the fleet stream and returns the exact virtual-time Report.
// Out-of-order input is sorted on entry; all per-request slices stay aligned
// with the caller's indices. Supervised models' drift control runs inside
// the replay (their swap histories land in ModelReports), and each
// supervisor's metrics snapshot is installed as if Run had been called.
func (p *Pool) Serve(reqs []Request) (*Report, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("fleet: empty request stream")
	}
	for i, r := range reqs {
		switch {
		case r.Model < 0 || r.Model >= len(p.models):
			return nil, fmt.Errorf("fleet: request %d targets unknown model %d (have %d)", i, r.Model, len(p.models))
		case r.Tenant < 0 || r.Tenant >= len(p.tenants):
			return nil, fmt.Errorf("fleet: request %d belongs to unknown tenant %d (have %d)", i, r.Tenant, len(p.tenants))
		case r.Size <= 0:
			return nil, fmt.Errorf("fleet: request %d has non-positive size %d", i, r.Size)
		case r.Deadline < 0:
			return nil, fmt.Errorf("fleet: request %d has negative deadline %g", i, r.Deadline)
		}
	}
	sorted, order := arrivalOrder(reqs)
	n := len(sorted)
	k := p.cfg.Queue.EffectiveWorkers()

	// Per-model continuous-serving control; nil for static models. Every
	// BeginRun must be balanced by Finalize (success) or Abort (error).
	lcs := make([]*trace.LoopControl, len(p.models))
	for m := range p.models {
		if p.models[m].Supervisor != nil {
			lcs[m] = p.models[m].Supervisor.BeginRun()
		}
	}
	abort := func() {
		for _, lc := range lcs {
			if lc != nil {
				lc.Abort()
			}
		}
	}

	st := &poolRun{
		p:           p,
		asg:         p.initial.clone(),
		free:        make([]float64, k),
		busy:        make([]float64, k),
		tune:        make([]float64, k),
		served:      make([]int, k),
		tuneByModel: make([]float64, len(p.models)),
	}
	occ := make([]*modelOccupier, len(p.models))
	for m := range occ {
		occ[m] = &modelOccupier{run: st, model: m}
	}

	// A stateful dispatch policy (e.g. WeightedFair's deficit counters)
	// starts every replay from the same state, so a reused Pool stays
	// deterministic across Serve calls.
	if r, ok := p.policy.(interface{ Reset() }); ok {
		r.Reset()
	}

	met := &Metrics{
		Latency:   p.cfg.histogram(),
		Policy:    p.policy.Name(),
		Placement: p.cfg.Placement.String(),
		Models:    make([]GroupMetrics, len(p.models)),
		Tenants:   make([]GroupMetrics, len(p.tenants)),
	}
	for m := range met.Models {
		met.Models[m].Name = p.models[m].Name
		met.Models[m].Latency = p.cfg.histogram()
	}
	for t := range met.Tenants {
		met.Tenants[t].Name = p.tenants[t].Name
		met.Tenants[t].Latency = p.cfg.histogram()
	}

	rep := &Report{
		Sojourn:     make([]float64, n),
		Outcomes:    make([]Outcome, n),
		Generations: make([]int, n),
		Dispatch:    make([]float64, n),
		Worker:      make([]int, n),
		Service:     make([]float64, n),
		Metrics:     met,
	}
	for i := 0; i < n; i++ {
		rep.Sojourn[i] = math.NaN()
		rep.Dispatch[i] = math.NaN()
		rep.Service[i] = math.NaN()
		rep.Worker[i] = -1
	}

	var queue []qentry  // whole admissions awaiting dispatch, admission order
	var chunks []qentry // split chunks awaiting dispatch, FIFO
	splits := make(map[int]*fleetSplit)
	var eligIdx []int // dispatch-candidate scratch, reused across events
	queuedByTenant := make([]int, len(p.tenants))
	queuedByModel := make([]int, len(p.models))
	workByModel := make([]float64, len(p.models))
	modelSojourns := make([][]float64, len(p.models))
	tenantSojourns := make([][]float64, len(p.tenants))
	var lastEnd float64
	lastReb := sorted[0].Arrival

	// observeDepth tracks peak shared-buffer occupancy (whole admissions
	// plus queued split chunks) at the same points the single-model engine
	// samples it: after an admission enters the queue and after a dispatch
	// removes an entry — the latter is how a post-split peak (one removal,
	// several chunk insertions) becomes visible.
	observeDepth := func() {
		if d := len(queue) + len(chunks); d > met.MaxQueueDepth {
			met.MaxQueueDepth = d
		}
	}

	// maybeRebalance evaluates the rebalance hook at its virtual-time
	// pacing. It runs on both arrival and dispatch events — dispatch events
	// keep it alive while the queue drains after the last arrival and across
	// arrival-free windows — and records a load snapshot into the history
	// the hook consumes. Returns whether a new assignment was applied.
	maybeRebalance := func(now float64) (bool, error) {
		if p.cfg.Rebalance == nil || p.cfg.RebalanceEvery <= 0 || now < lastReb+p.cfg.RebalanceEvery {
			return false, nil
		}
		lastReb = now
		load := make([]WorkerLoad, k)
		for w := 0; w < k; w++ {
			load[w] = WorkerLoad{Busy: st.busy[w], TuneBusy: st.tune[w], FreeAt: st.free[w]}
			for i := range queue {
				if placedOn(st.asg, queue[i].model, w) {
					load[w].Queued++
				}
			}
			for i := range chunks {
				if placedOn(st.asg, chunks[i].model, w) {
					load[w].Queued++
				}
			}
		}
		qbm := append([]int(nil), queuedByModel...)
		for i := range chunks {
			qbm[chunks[i].model]++
		}
		met.LoadHistory = append(met.LoadHistory, LoadSnapshot{
			Time:          now,
			Workers:       load,
			QueuedByModel: qbm,
			WorkByModel:   append([]float64(nil), workByModel...),
		})
		na := p.cfg.Rebalance(now, met.LoadHistory, st.asg.clone())
		if na == nil {
			return false, nil
		}
		if err := na.validate(len(p.models), k); err != nil {
			return false, fmt.Errorf("fleet: rebalance at t=%g: %w", now, err)
		}
		st.asg = na.clone()
		met.Rebalances++
		return true, nil
	}

	shed := func(pos int, out Outcome, model, tenant int) {
		idx := originalIndex(order, pos)
		rep.Outcomes[idx] = out
		bump := func(g *GroupMetrics) {
			switch out {
			case OutcomeShedQueue:
				g.ShedQueue++
			case OutcomeShedQuota:
				g.ShedQuota++
			case OutcomeShedLoad:
				g.ShedLoad++
			case OutcomeShedDeadline:
				g.ShedDeadline++
			}
		}
		bump(&met.Models[model])
		bump(&met.Tenants[tenant])
		switch out {
		case OutcomeShedQueue:
			met.ShedQueue++
		case OutcomeShedQuota:
			met.ShedQuota++
		case OutcomeShedLoad:
			met.ShedLoad++
		case OutcomeShedDeadline:
			met.ShedDeadline++
		}
	}

	next := 0
	for next < n || len(queue) > 0 || len(chunks) > 0 {
		tArr := math.Inf(1)
		if next < n {
			tArr = sorted[next].Arrival
		}

		// Earliest possible dispatch: for each worker, the earliest queued
		// request or split chunk placed on it (by arrival) bounds the
		// worker's next start. Ties between workers resolve by the placement
		// strategy; ties with an arrival dispatch first, so a slot freed at
		// time t is visible to an arrival at time t — matching the
		// single-model engine.
		bestW := -1
		tDisp := math.Inf(1)
		for w := 0; w < k; w++ {
			minArr := math.Inf(1)
			for i := range queue {
				if !placedOn(st.asg, queue[i].model, w) {
					continue
				}
				if queue[i].arrival < minArr {
					minArr = queue[i].arrival
				}
			}
			for i := range chunks {
				if !placedOn(st.asg, chunks[i].model, w) {
					continue
				}
				if chunks[i].arrival < minArr {
					minArr = chunks[i].arrival
				}
			}
			if math.IsInf(minArr, 1) {
				continue
			}
			t := math.Max(st.free[w], minArr)
			if t < tDisp || (t == tDisp && st.betterWorker(w, bestW)) {
				bestW, tDisp = w, t
			}
		}

		if bestW == -1 || tDisp > tArr {
			// Admit the next arrival.
			r := sorted[next]
			pos := next
			next++
			now := r.Arrival

			// Load-aware rebalancing hook, paced by virtual time.
			if _, err := maybeRebalance(now); err != nil {
				abort()
				return nil, err
			}

			// The model's drift control observes every arrival — before any
			// queue placement or shedding, exactly like the single-model
			// engine — and stamps the generation the request is admitted on.
			gen := 0
			if lcs[r.Model] != nil {
				g, err := lcs[r.Model].Admit(occ[r.Model], r.Size, now)
				if err != nil {
					abort()
					return nil, err
				}
				gen = g
			}
			rep.Generations[originalIndex(order, pos)] = gen

			qr := QueuedRequest{
				ID:       pos,
				Arrival:  now,
				Deadline: p.deadlineOf(r),
				Size:     r.Size,
				Model:    r.Model,
				Tenant:   r.Tenant,
				Priority: p.tenants[r.Tenant].Priority,
			}
			load := PoolLoad{
				Now:            now,
				Queued:         len(queue) + len(chunks),
				QueueDepth:     p.cfg.Queue.QueueDepth,
				QueuedByTenant: append([]int(nil), queuedByTenant...),
			}
			ok, out := p.policy.Admit(qr, load)
			if !ok {
				if !out.Shed() {
					abort()
					return nil, fmt.Errorf("fleet: policy %s rejected a request with non-shed outcome %v", p.policy.Name(), out)
				}
				shed(pos, out, r.Model, r.Tenant)
				continue
			}
			queue = append(queue, qentry{
				id:       pos,
				arrival:  now,
				deadline: qr.Deadline,
				size:     r.Size,
				model:    r.Model,
				tenant:   r.Tenant,
				prio:     qr.Priority,
				gen:      gen,
			})
			queuedByTenant[r.Tenant]++
			queuedByModel[r.Model]++
			observeDepth()
			if queuedByTenant[r.Tenant] > met.Tenants[r.Tenant].MaxQueued {
				met.Tenants[r.Tenant].MaxQueued = queuedByTenant[r.Tenant]
			}
			if queuedByModel[r.Model] > met.Models[r.Model].MaxQueued {
				met.Models[r.Model].MaxQueued = queuedByModel[r.Model]
			}
			continue
		}

		// The rebalance pacing is evaluated at dispatch events too —
		// otherwise the hook would fall silent the moment arrivals stop
		// (drain phase) or thin out. An applied rebalance invalidates the
		// candidate computation above, so recompute the event under the new
		// assignment; lastReb has advanced, so this cannot loop.
		if changed, err := maybeRebalance(tDisp); err != nil {
			abort()
			return nil, err
		} else if changed {
			continue
		}

		// Split chunks placed on this worker dispatch ahead of any policy
		// pick — a split request was already chosen by the policy once, and
		// finishing it promptly is the point of splitting (the single-model
		// engine expresses the same rule by inserting chunks at the queue
		// front). Chunks dispatch in split order.
		ci := -1
		for i := range chunks {
			if chunks[i].arrival <= tDisp && placedOn(st.asg, chunks[i].model, bestW) {
				ci = i
				break
			}
		}
		if ci >= 0 {
			e := chunks[ci]
			chunks = append(chunks[:ci], chunks[ci+1:]...)
			observeDepth()

			var sv float64
			var err error
			if lcs[e.model] != nil {
				sv, err = lcs[e.model].Resolve(e.gen, e.arrival, e.size)
			} else {
				sv, err = p.models[e.model].Service(e.arrival, e.size)
			}
			if err == nil && sv < 0 {
				err = fmt.Errorf("fleet: negative service time %g for size %d", sv, e.size)
			}
			if err != nil {
				abort()
				return nil, fmt.Errorf("fleet: model %s: %w", p.models[e.model].Name, err)
			}

			end := tDisp + sv
			st.free[bestW] = end
			st.busy[bestW] += sv
			st.served[bestW]++
			workByModel[e.model] += sv
			sp := splits[e.id]
			sp.remaining--
			sp.service += sv
			sp.worker = bestW
			if math.IsNaN(sp.firstDisp) {
				sp.firstDisp = tDisp
			}
			if end > sp.end {
				sp.end = end
			}
			if sp.remaining == 0 {
				soj := sp.end - e.arrival
				idx := originalIndex(order, e.id)
				rep.Sojourn[idx] = soj
				rep.Outcomes[idx] = OutcomeSplit
				rep.Dispatch[idx] = sp.firstDisp
				rep.Worker[idx] = sp.worker
				rep.Service[idx] = sp.service
				met.Served++
				met.SplitServed++
				met.Latency.Observe(soj)
				mm, tt := &met.Models[e.model], &met.Tenants[e.tenant]
				mm.Served++
				mm.SplitServed++
				mm.Latency.Observe(soj)
				tt.Served++
				tt.SplitServed++
				tt.Latency.Observe(soj)
				modelSojourns[e.model] = append(modelSojourns[e.model], soj)
				tenantSojourns[e.tenant] = append(tenantSojourns[e.tenant], soj)
				if sp.end > e.deadline {
					met.Timeouts++
					mm.Timeouts++
					tt.Timeouts++
				}
				if sp.end > lastEnd {
					lastEnd = sp.end
				}
				if lcs[e.model] != nil {
					lcs[e.model].Observe(sp.size, e.gen, sp.end, soj)
				}
				delete(splits, e.id)
			}
			continue
		}

		// Dispatch on bestW at tDisp: the policy picks among the queued
		// requests that are placed on this worker and have arrived.
		eligIdx = eligIdx[:0]
		for i := range queue {
			if queue[i].arrival <= tDisp && placedOn(st.asg, queue[i].model, bestW) {
				eligIdx = append(eligIdx, i)
			}
		}
		elig := make([]QueuedRequest, len(eligIdx))
		for j, i := range eligIdx {
			e := &queue[i]
			elig[j] = QueuedRequest{
				ID: e.id, Arrival: e.arrival, Deadline: e.deadline,
				Size: e.size, Model: e.model, Tenant: e.tenant, Priority: e.prio,
			}
		}
		pick := p.policy.Next(elig, tDisp)
		if pick < 0 || pick >= len(elig) {
			abort()
			return nil, fmt.Errorf("fleet: policy %s picked out-of-range candidate %d of %d", p.policy.Name(), pick, len(elig))
		}
		qi := eligIdx[pick]
		e := queue[qi]
		queue = append(queue[:qi], queue[qi+1:]...)
		queuedByTenant[e.tenant]--
		queuedByModel[e.model]--
		observeDepth()

		var sv float64
		var err error
		if lcs[e.model] != nil {
			sv, err = lcs[e.model].Resolve(e.gen, e.arrival, e.size)
		} else {
			sv, err = p.models[e.model].Service(e.arrival, e.size)
		}
		if err == nil && sv < 0 {
			err = fmt.Errorf("fleet: negative service time %g for size %d", sv, e.size)
		}
		if err != nil {
			abort()
			return nil, fmt.Errorf("fleet: model %s: %w", p.models[e.model].Name, err)
		}

		switch {
		case p.cfg.Queue.Policy == trace.DegradeShed && tDisp+sv > e.deadline:
			shed(e.id, OutcomeShedDeadline, e.model, e.tenant)
			continue
		case p.cfg.Queue.Policy == trace.DegradeSplitTail && p.cfg.Queue.IsTail(e.size) && tDisp > e.deadline:
			// The tail request cannot even start before its deadline.
			shed(e.id, OutcomeShedDeadline, e.model, e.tenant)
			continue
		case p.cfg.Queue.Policy == trace.DegradeSplitTail && p.cfg.Queue.IsTail(e.size) && tDisp+sv > e.deadline:
			// Split-at-cap fallback, same semantics as the single-model
			// engine: the tail request re-enters dispatch as capped chunks
			// that route independently (chunks of one request can run on
			// several workers at once) and dispatch ahead of policy picks.
			// Chunks inherit the parent's generation: a split request is
			// still one admission and finishes on the schedule set it
			// arrived under.
			cs := p.cfg.Queue.ChunkSizes(e.size)
			splits[e.id] = &fleetSplit{remaining: len(cs), size: e.size, firstDisp: math.NaN()}
			for _, c := range cs {
				chunks = append(chunks, qentry{
					id: e.id, arrival: e.arrival, deadline: e.deadline,
					size: c, model: e.model, tenant: e.tenant, gen: e.gen,
				})
			}
			continue
		}

		end := tDisp + sv
		st.free[bestW] = end
		st.busy[bestW] += sv
		st.served[bestW]++
		workByModel[e.model] += sv
		if end > lastEnd {
			lastEnd = end
		}
		soj := end - e.arrival
		idx := originalIndex(order, e.id)
		rep.Sojourn[idx] = soj
		rep.Outcomes[idx] = OutcomeServed
		rep.Dispatch[idx] = tDisp
		rep.Worker[idx] = bestW
		rep.Service[idx] = sv
		met.Served++
		met.Latency.Observe(soj)
		met.Models[e.model].Served++
		met.Models[e.model].Latency.Observe(soj)
		met.Tenants[e.tenant].Served++
		met.Tenants[e.tenant].Latency.Observe(soj)
		modelSojourns[e.model] = append(modelSojourns[e.model], soj)
		tenantSojourns[e.tenant] = append(tenantSojourns[e.tenant], soj)
		if end > e.deadline {
			met.Timeouts++
			met.Models[e.model].Timeouts++
			met.Tenants[e.tenant].Timeouts++
		}
		if lcs[e.model] != nil {
			lcs[e.model].Observe(e.size, e.gen, end, soj)
		}
	}

	// Pool-wide aggregates.
	met.Makespan = lastEnd - sorted[0].Arrival
	if met.Makespan < 0 {
		met.Makespan = 0
	}
	met.Workers = make([]trace.WorkerStats, k)
	for w := 0; w < k; w++ {
		met.Workers[w] = trace.WorkerStats{
			Served:   st.served[w],
			Busy:     st.busy[w],
			TuneBusy: st.tune[w],
		}
		if met.Makespan > 0 {
			met.Workers[w].Utilization = (st.busy[w] + st.tune[w]) / met.Makespan
		}
	}
	for m := range met.Models {
		groupStats(&met.Models[m], modelSojourns[m])
	}
	for t := range met.Tenants {
		groupStats(&met.Tenants[t], tenantSojourns[t])
	}

	// Per-model single-model reports; supervised models finalize their
	// drift control into them (swap history, generation count, rollbacks)
	// and publish their metrics snapshots.
	rep.ModelReports = make([]*trace.Report, len(p.models))
	for m := range p.models {
		rep.ModelReports[m] = p.modelReport(m, reqs, rep, st.tuneByModel[m])
		if lcs[m] != nil {
			lcs[m].Finalize(rep.ModelReports[m])
		}
	}
	return rep, nil
}

// placedOn reports whether model m may run on worker w under asg.
func placedOn(asg Assignment, m, w int) bool {
	for _, x := range asg[m] {
		if x == w {
			return true
		}
	}
	return false
}

// modelReport builds model m's single-model view of a fleet run: its own
// requests in caller order, with sojourns, outcomes (shed causes carried
// through one-for-one), generation stamps and a trace.Metrics carrying the
// model's latency histogram and tune time.
func (p *Pool) modelReport(m int, reqs []Request, rep *Report, tuneBusy float64) *trace.Report {
	var sojourns []float64
	var outcomes []trace.Outcome
	var gens []int
	tm := &trace.Metrics{Latency: p.cfg.histogram(), TuneBusy: tuneBusy}
	firstArr, lastEnd := math.Inf(1), math.Inf(-1)
	var served []float64
	var totalService float64
	for i, r := range reqs {
		if r.Model != m {
			continue
		}
		sojourns = append(sojourns, rep.Sojourn[i])
		gens = append(gens, rep.Generations[i])
		if r.Arrival < firstArr {
			firstArr = r.Arrival
		}
		switch rep.Outcomes[i] {
		case OutcomeServed, OutcomeSplit:
			end := rep.Dispatch[i] + rep.Service[i]
			if rep.Outcomes[i] == OutcomeSplit {
				outcomes = append(outcomes, trace.OutcomeSplit)
				tm.SplitServed++
				// A split's chunks interleave with other work, so its end is
				// not dispatch+service; the sojourn carries it exactly.
				end = r.Arrival + rep.Sojourn[i]
			} else {
				outcomes = append(outcomes, trace.OutcomeServed)
			}
			tm.Served++
			tm.Latency.Observe(rep.Sojourn[i])
			served = append(served, rep.Sojourn[i])
			totalService += rep.Service[i]
			if end > lastEnd {
				lastEnd = end
			}
			if end > p.deadlineOf(r) {
				tm.Timeouts++
			}
		case OutcomeShedDeadline:
			outcomes = append(outcomes, trace.OutcomeShedDeadline)
			tm.DeadlineSheds++
		case OutcomeShedQuota:
			// Shed causes survive the translation one-for-one: a per-model
			// trace view must not misreport why requests were dropped.
			outcomes = append(outcomes, trace.OutcomeShedQuota)
			tm.QuotaSheds++
		case OutcomeShedLoad:
			outcomes = append(outcomes, trace.OutcomeShedLoad)
			tm.LoadSheds++
		default:
			outcomes = append(outcomes, trace.OutcomeShedQueue)
			tm.QueueSheds++
		}
	}
	var q trace.Quantiler
	p50, p95, p99 := q.P50P95P99(served)
	out := &trace.Report{
		Result: trace.Result{
			Sojourn: sojourns,
			P50:     p50,
			P95:     p95,
			P99:     p99,
		},
		Outcomes:    outcomes,
		Generations: gens,
		Metrics:     tm,
	}
	if len(served) > 0 {
		out.MeanService = totalService / float64(len(served))
	}
	if !math.IsInf(firstArr, 1) && !math.IsInf(lastEnd, -1) {
		tm.Makespan = lastEnd - firstArr
		if tm.Makespan < 0 {
			tm.Makespan = 0
		}
	}
	return out
}

// Interference quantifies cross-model contention in a fleet run: for each
// model, the ratio of its mean served sojourn in rep to the mean sojourn of
// the same requests — with the exact service times the fleet run resolved —
// replayed alone by least-loaded dispatch on the model's initially assigned
// workers. A ratio near 1 means co-location cost the model nothing
// (dedicated placement should sit here); above 1 is the sojourn inflation
// its neighbors caused. NaN for a model that served nothing.
func (p *Pool) Interference(reqs []Request, rep *Report) ([]float64, error) {
	if len(rep.Sojourn) != len(reqs) || len(rep.Service) != len(reqs) {
		return nil, fmt.Errorf("fleet: report does not match the request stream (%d sojourns, %d requests)", len(rep.Sojourn), len(reqs))
	}
	// Arrival order over caller indices, matching the replay.
	idx := make([]int, len(reqs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return reqs[idx[a]].Arrival < reqs[idx[b]].Arrival })

	out := make([]float64, len(p.models))
	for m := range p.models {
		kM := len(p.initial[m])
		free := make([]float64, kM)
		var fleetSum, soloSum float64
		count := 0
		for _, i := range idx {
			r := reqs[i]
			if r.Model != m || rep.Outcomes[i] != OutcomeServed {
				continue
			}
			best := 0
			for g := 1; g < kM; g++ {
				if free[g] < free[best] {
					best = g
				}
			}
			start := math.Max(r.Arrival, free[best])
			free[best] = start + rep.Service[i]
			soloSum += free[best] - r.Arrival
			fleetSum += rep.Sojourn[i]
			count++
		}
		if count == 0 || soloSum == 0 {
			out[m] = math.NaN()
			continue
		}
		out[m] = fleetSum / soloSum
	}
	return out, nil
}
