package fleet

import (
	"fmt"
	"math"

	"repro/internal/emcache"
	"repro/internal/trace"
)

// TenantSpec describes one traffic class sharing the pool: its admission
// priority, queue quota and default latency deadline. Tenants are the
// serving-side counterpart of the paper's feature heterogeneity — production
// recommendation fleets co-locate interactive ranking traffic with batch
// re-scoring on the same accelerators, and the admission policy is what
// keeps the former's tail latency intact.
type TenantSpec struct {
	// Name labels the tenant in metrics and reports.
	Name string
	// Priority orders dispatch: a higher value dispatches strictly before
	// any lower one (see PriorityEDF). Equal priorities form one class.
	Priority int
	// Quota bounds the tenant's queued (admitted, not yet dispatched)
	// requests; an arrival past it is shed with OutcomeShedQuota. 0 means
	// unlimited.
	Quota int
	// Deadline is the default per-request completion deadline in seconds
	// for this tenant's requests; 0 falls back to the pool's default.
	// Deadlines drive EDF ordering within a priority class and the
	// DegradeShed policy's dispatch-time shedding.
	Deadline float64
}

// Validate checks one tenant spec.
func (t *TenantSpec) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("fleet: tenant name must be non-empty")
	case t.Quota < 0:
		return fmt.Errorf("fleet: tenant %s: Quota must be >= 0, got %d", t.Name, t.Quota)
	case t.Deadline < 0:
		return fmt.Errorf("fleet: tenant %s: Deadline must be >= 0, got %g", t.Name, t.Deadline)
	}
	return nil
}

// Model is one served model on the pool: either a static service (Service
// set — the schedules never change) or a supervised one (Supervisor set —
// the model keeps its own drift detection, background re-tunes, hot-swaps
// and canary rollbacks while sharing pool capacity). Exactly one of the two
// must be set.
type Model struct {
	// Name labels the model in metrics and reports.
	Name string
	// Service is the model's fixed schedule set (generation 0 forever).
	Service trace.TimedServiceFunc
	// Supervisor owns the model's continuous-serving control. The pool
	// holds its run lock for the duration of Serve, so generations stay
	// monotone on the supervisor's LiveSet exactly as under
	// trace.Supervisor.Run.
	Supervisor *trace.Supervisor
	// Reserve is the model's exclusive worker floor under packed or spread
	// placement: assign() carves this many of the lowest-indexed workers out
	// of the shared set for this model alone, rebalance assignments must keep
	// at least Reserve workers exclusive to the model, the autoscaler never
	// drains a reserved worker, and the model's background re-tunes prefer
	// its reserved workers — the "tune on a dedicated spare" discipline.
	// 0 means no reservation. Rejected under dedicated placement, where every
	// worker is already exclusive.
	Reserve int
	// ClassScale is the model's per-worker-class service-time multiplier: a
	// dispatch on a worker of class c runs the resolved service time times
	// ClassScale[c] (missing entries and nil default to 1). This is how a
	// pool mixes V100-class and A100-class workers: the caller measures the
	// scale per device class (core/experiments probe each class's tuned
	// schedule), so a schedule tuned for one SM/DRAM shape honestly runs at
	// that shape's speed and nowhere else. The scale applies to the model's
	// resolved service only — an embedding-cache tier's PCIe penalty is
	// transfer-bound and stays class-independent.
	ClassScale []float64
}

// Validate checks one model spec.
func (m *Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("fleet: model name must be non-empty")
	case m.Service == nil && m.Supervisor == nil:
		return fmt.Errorf("fleet: model %s: one of Service or Supervisor must be set", m.Name)
	case m.Service != nil && m.Supervisor != nil:
		return fmt.Errorf("fleet: model %s: Service and Supervisor are mutually exclusive", m.Name)
	case m.Reserve < 0:
		return fmt.Errorf("fleet: model %s: Reserve must be >= 0, got %d", m.Name, m.Reserve)
	}
	for c, s := range m.ClassScale {
		if !(s > 0) || math.IsInf(s, 1) {
			return fmt.Errorf("fleet: model %s: ClassScale[%d] must be positive and finite, got %g", m.Name, c, s)
		}
	}
	return nil
}

// Config shapes the pool.
type Config struct {
	// Queue is the shared queue policy: Workers is the pool size,
	// QueueDepth the shared admission-queue bound, Deadline the pool-wide
	// default, Policy the degradation policy, SplitCap the long-tail split
	// threshold. Under DegradeSplitTail with SplitCap > 0 the pool applies
	// the single-model engine's split-at-cap fallback at dispatch time: a
	// tail request that would miss its deadline as one kernel is split into
	// capped chunks that dispatch ahead of the policy's picks (a split
	// request was already chosen once; finishing it promptly is the point).
	// Unlike the single-model engine, a full queue stays entirely the
	// admission policy's decision — there is no tail eviction or soft bound;
	// chunks do count toward the policy's queue-occupancy view.
	Queue trace.QueuePolicy
	// Placement assigns models to workers (see Strategy).
	Placement Strategy
	// Admission decides who enters the queue and who dispatches next; nil
	// means NewPriorityEDF over the pool's tenants with ShedFraction.
	Admission AdmissionPolicy
	// ShedFraction arms load-aware early shedding in the default admission
	// policy: once queue occupancy reaches this fraction of QueueDepth, an
	// arrival from any tenant below the pool's highest priority class is
	// shed (OutcomeShedLoad), keeping the remaining headroom for the
	// latency-critical class. 0 disables; requires a bounded queue to have
	// any effect. Ignored when a custom Admission policy is supplied.
	ShedFraction float64
	// RebalanceEvery invokes the Rebalance hook at the first arrival at
	// least this many virtual seconds after the previous invocation; 0
	// disables rebalancing.
	RebalanceEvery float64
	// Rebalance is the load-aware placement hook (nil = keep the initial
	// assignment). Mutually exclusive with Autoscale: the autoscaler owns
	// the pool's shape when armed.
	Rebalance RebalanceFunc
	// Preempt arms chunk-boundary preemption: a queued split chunk normally
	// dispatches ahead of any policy pick, but with Preempt set it yields
	// when a strictly higher-priority whole request is waiting on the same
	// worker — the chunk requeues at the preemption time (an OutcomePreempted
	// event per chunk, counted in Metrics.Preemptions) and the policy picks
	// instead. An applied rebalance or scale-in likewise requeues every
	// queued chunk, modeling the migration cost. The parent request's final
	// outcome and sojourn accounting are unchanged: preemption only delays
	// its remaining chunks. With a single priority class preemption never
	// fires and replay is bit-identical to a preemption-free pool.
	Preempt bool
	// WorkerClasses assigns each initial worker a device-class index (one
	// entry per Queue.EffectiveWorkers() worker); nil means every worker is
	// class 0. The class selects each model's ClassScale entry at dispatch —
	// this is how the pool mixes simulated V100-class and A100-class devices.
	WorkerClasses []int
	// ClassNames optionally labels the worker classes (e.g. "V100", "A100")
	// for reports. When set, every class index referenced by WorkerClasses,
	// Autoscale.Class or a model's ClassScale must be within it.
	ClassNames []string
	// Autoscale, when set, lets the pool grow and shrink between
	// Autoscale.Min and Autoscale.Max workers from the same windowed demand
	// signal RebalanceByLoad consumes, with scale-out lag and
	// drain-before-remove semantics. Restricted to packed/spread placement.
	Autoscale *AutoscaleConfig
	// HistMin, HistMax, HistBuckets shape the latency histograms (fleet,
	// per-model and per-tenant); zero values default to 1us..10s across 28
	// log-spaced buckets, matching trace.ServerConfig.
	HistMin, HistMax float64
	HistBuckets      int
	// Cache, when set, is the shared embedding-cache tier every dispatched
	// request consults and mutates: cold rows are charged to the request's
	// service time through the PCIe fault model, fills warm the tier, and
	// the tier's heat tracker may re-allocate the budget online. The tier
	// must be built for exactly this pool's model and tenant counts. Cache
	// state evolves only at dispatch events and Begin resets it, so batch
	// replay, the live gateway and session replay stay bit-identical on a
	// reused pool.
	Cache *emcache.Tier
}

// Validate checks the pool configuration against the given model and tenant
// counts.
func (c *Config) Validate(models, tenants int) error {
	if err := c.Queue.Validate(); err != nil {
		return err
	}
	switch {
	case models <= 0:
		return fmt.Errorf("fleet: need at least one model")
	case tenants <= 0:
		return fmt.Errorf("fleet: need at least one tenant")
	case c.Placement < PlacementPacked || c.Placement > PlacementDedicated:
		return fmt.Errorf("fleet: unknown placement strategy %d", int(c.Placement))
	case c.ShedFraction < 0 || c.ShedFraction > 1:
		return fmt.Errorf("fleet: ShedFraction %g outside [0,1]", c.ShedFraction)
	case c.ShedFraction > 0 && c.Queue.QueueDepth == 0:
		// Load-aware shedding triggers at ShedFraction * QueueDepth queued
		// requests; over an unbounded queue the threshold is 0 * anything and
		// the feature silently never fires. Reject the dead combination
		// instead of letting it masquerade as protection.
		return fmt.Errorf("fleet: ShedFraction %g requires a bounded queue (QueueDepth > 0): load-aware shedding never fires over an unbounded queue", c.ShedFraction)
	case c.RebalanceEvery < 0:
		return fmt.Errorf("fleet: RebalanceEvery must be >= 0, got %g", c.RebalanceEvery)
	case c.HistMin < 0 || c.HistMax < 0 || c.HistBuckets < 0:
		return fmt.Errorf("fleet: histogram shape must be non-negative")
	}
	// Cross-check the histogram shape after default resolution — the same
	// resolution histogram() applies — so a shape that only turns invalid once
	// defaults kick in (HistMin=20 with HistMax=0 -> 10) fails here rather
	// than panicking inside NewHistogram mid-Serve.
	if min, max, _ := c.histShape(); max <= min {
		return fmt.Errorf("fleet: HistMax %g must exceed HistMin %g after defaults (HistMin=1e-6, HistMax=10)", max, min)
	}
	if c.Placement == PlacementDedicated && c.Queue.EffectiveWorkers() < models {
		return fmt.Errorf("fleet: dedicated placement needs at least one worker per model (%d workers, %d models)",
			c.Queue.EffectiveWorkers(), models)
	}
	if c.Cache != nil {
		if c.Cache.Models() != models {
			return fmt.Errorf("fleet: cache tier built for %d models, pool has %d", c.Cache.Models(), models)
		}
		if c.Cache.Tenants() != tenants {
			return fmt.Errorf("fleet: cache tier built for %d tenants, pool has %d", c.Cache.Tenants(), tenants)
		}
	}
	if len(c.WorkerClasses) != 0 && len(c.WorkerClasses) != c.Queue.EffectiveWorkers() {
		return fmt.Errorf("fleet: WorkerClasses has %d entries for %d workers (must cover every worker or be nil)",
			len(c.WorkerClasses), c.Queue.EffectiveWorkers())
	}
	for w, cls := range c.WorkerClasses {
		if cls < 0 {
			return fmt.Errorf("fleet: WorkerClasses[%d] is negative (%d)", w, cls)
		}
		if len(c.ClassNames) > 0 && cls >= len(c.ClassNames) {
			return fmt.Errorf("fleet: WorkerClasses[%d] = %d outside the %d named classes", w, cls, len(c.ClassNames))
		}
	}
	if c.Autoscale != nil {
		if c.Placement == PlacementDedicated {
			return fmt.Errorf("fleet: Autoscale requires packed or spread placement (a dedicated partition has no shared workers to grow)")
		}
		if c.Rebalance != nil {
			return fmt.Errorf("fleet: Autoscale and Rebalance are mutually exclusive (the autoscaler owns the pool's shape)")
		}
		if err := c.Autoscale.Validate(c.Queue.EffectiveWorkers()); err != nil {
			return err
		}
		if len(c.ClassNames) > 0 && c.Autoscale.Class >= len(c.ClassNames) {
			return fmt.Errorf("fleet: Autoscale.Class %d outside the %d named classes", c.Autoscale.Class, len(c.ClassNames))
		}
	}
	return nil
}

// histShape resolves the configured histogram shape with zero-value defaults
// applied: 1us..10s across 28 log-spaced buckets, matching trace.ServerConfig.
func (c *Config) histShape() (min, max float64, n int) {
	min, max, n = c.HistMin, c.HistMax, c.HistBuckets
	if min == 0 {
		min = 1e-6
	}
	if max == 0 {
		max = 10
	}
	if n == 0 {
		n = 28
	}
	return min, max, n
}

// histogram builds a latency histogram with the configured shape.
func (c *Config) histogram() *trace.Histogram {
	return trace.NewHistogram(c.histShape())
}

// Request is one inference request in a fleet stream: a trace.Request tagged
// with the model it targets and the tenant it belongs to.
type Request struct {
	// Arrival is the arrival time in seconds from stream start.
	Arrival float64
	// Size is the batch size (samples).
	Size int
	// Deadline is an optional per-request completion deadline in seconds
	// after Arrival; 0 falls back to the tenant default, then the pool
	// default.
	Deadline float64
	// Model indexes the pool's model list.
	Model int
	// Tenant indexes the pool's tenant list.
	Tenant int
}

// Stream tags one single-model request trace with its model and tenant, for
// Merge.
type Stream struct {
	Model, Tenant int
	Reqs          []trace.Request
}

// Merge combines per-(model, tenant) request streams into one
// arrival-ordered fleet stream. The merge is stable: simultaneous arrivals
// keep their stream order, so a merged trace is a deterministic function of
// its inputs.
func Merge(streams ...Stream) []Request {
	var out []Request
	for _, s := range streams {
		for _, r := range s.Reqs {
			out = append(out, Request{
				Arrival:  r.Arrival,
				Size:     r.Size,
				Deadline: r.Deadline,
				Model:    s.Model,
				Tenant:   s.Tenant,
			})
		}
	}
	sortRequests(out)
	return out
}
