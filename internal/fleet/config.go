package fleet

import (
	"fmt"

	"repro/internal/emcache"
	"repro/internal/trace"
)

// TenantSpec describes one traffic class sharing the pool: its admission
// priority, queue quota and default latency deadline. Tenants are the
// serving-side counterpart of the paper's feature heterogeneity — production
// recommendation fleets co-locate interactive ranking traffic with batch
// re-scoring on the same accelerators, and the admission policy is what
// keeps the former's tail latency intact.
type TenantSpec struct {
	// Name labels the tenant in metrics and reports.
	Name string
	// Priority orders dispatch: a higher value dispatches strictly before
	// any lower one (see PriorityEDF). Equal priorities form one class.
	Priority int
	// Quota bounds the tenant's queued (admitted, not yet dispatched)
	// requests; an arrival past it is shed with OutcomeShedQuota. 0 means
	// unlimited.
	Quota int
	// Deadline is the default per-request completion deadline in seconds
	// for this tenant's requests; 0 falls back to the pool's default.
	// Deadlines drive EDF ordering within a priority class and the
	// DegradeShed policy's dispatch-time shedding.
	Deadline float64
}

// Validate checks one tenant spec.
func (t *TenantSpec) Validate() error {
	switch {
	case t.Name == "":
		return fmt.Errorf("fleet: tenant name must be non-empty")
	case t.Quota < 0:
		return fmt.Errorf("fleet: tenant %s: Quota must be >= 0, got %d", t.Name, t.Quota)
	case t.Deadline < 0:
		return fmt.Errorf("fleet: tenant %s: Deadline must be >= 0, got %g", t.Name, t.Deadline)
	}
	return nil
}

// Model is one served model on the pool: either a static service (Service
// set — the schedules never change) or a supervised one (Supervisor set —
// the model keeps its own drift detection, background re-tunes, hot-swaps
// and canary rollbacks while sharing pool capacity). Exactly one of the two
// must be set.
type Model struct {
	// Name labels the model in metrics and reports.
	Name string
	// Service is the model's fixed schedule set (generation 0 forever).
	Service trace.TimedServiceFunc
	// Supervisor owns the model's continuous-serving control. The pool
	// holds its run lock for the duration of Serve, so generations stay
	// monotone on the supervisor's LiveSet exactly as under
	// trace.Supervisor.Run.
	Supervisor *trace.Supervisor
}

// Validate checks one model spec.
func (m *Model) Validate() error {
	switch {
	case m.Name == "":
		return fmt.Errorf("fleet: model name must be non-empty")
	case m.Service == nil && m.Supervisor == nil:
		return fmt.Errorf("fleet: model %s: one of Service or Supervisor must be set", m.Name)
	case m.Service != nil && m.Supervisor != nil:
		return fmt.Errorf("fleet: model %s: Service and Supervisor are mutually exclusive", m.Name)
	}
	return nil
}

// Config shapes the pool.
type Config struct {
	// Queue is the shared queue policy: Workers is the pool size,
	// QueueDepth the shared admission-queue bound, Deadline the pool-wide
	// default, Policy the degradation policy, SplitCap the long-tail split
	// threshold. Under DegradeSplitTail with SplitCap > 0 the pool applies
	// the single-model engine's split-at-cap fallback at dispatch time: a
	// tail request that would miss its deadline as one kernel is split into
	// capped chunks that dispatch ahead of the policy's picks (a split
	// request was already chosen once; finishing it promptly is the point).
	// Unlike the single-model engine, a full queue stays entirely the
	// admission policy's decision — there is no tail eviction or soft bound;
	// chunks do count toward the policy's queue-occupancy view.
	Queue trace.QueuePolicy
	// Placement assigns models to workers (see Strategy).
	Placement Strategy
	// Admission decides who enters the queue and who dispatches next; nil
	// means NewPriorityEDF over the pool's tenants with ShedFraction.
	Admission AdmissionPolicy
	// ShedFraction arms load-aware early shedding in the default admission
	// policy: once queue occupancy reaches this fraction of QueueDepth, an
	// arrival from any tenant below the pool's highest priority class is
	// shed (OutcomeShedLoad), keeping the remaining headroom for the
	// latency-critical class. 0 disables; requires a bounded queue to have
	// any effect. Ignored when a custom Admission policy is supplied.
	ShedFraction float64
	// RebalanceEvery invokes the Rebalance hook at the first arrival at
	// least this many virtual seconds after the previous invocation; 0
	// disables rebalancing.
	RebalanceEvery float64
	// Rebalance is the load-aware placement hook (nil = keep the initial
	// assignment).
	Rebalance RebalanceFunc
	// HistMin, HistMax, HistBuckets shape the latency histograms (fleet,
	// per-model and per-tenant); zero values default to 1us..10s across 28
	// log-spaced buckets, matching trace.ServerConfig.
	HistMin, HistMax float64
	HistBuckets      int
	// Cache, when set, is the shared embedding-cache tier every dispatched
	// request consults and mutates: cold rows are charged to the request's
	// service time through the PCIe fault model, fills warm the tier, and
	// the tier's heat tracker may re-allocate the budget online. The tier
	// must be built for exactly this pool's model and tenant counts. Cache
	// state evolves only at dispatch events and Begin resets it, so batch
	// replay, the live gateway and session replay stay bit-identical on a
	// reused pool.
	Cache *emcache.Tier
}

// Validate checks the pool configuration against the given model and tenant
// counts.
func (c *Config) Validate(models, tenants int) error {
	if err := c.Queue.Validate(); err != nil {
		return err
	}
	switch {
	case models <= 0:
		return fmt.Errorf("fleet: need at least one model")
	case tenants <= 0:
		return fmt.Errorf("fleet: need at least one tenant")
	case c.Placement < PlacementPacked || c.Placement > PlacementDedicated:
		return fmt.Errorf("fleet: unknown placement strategy %d", int(c.Placement))
	case c.ShedFraction < 0 || c.ShedFraction > 1:
		return fmt.Errorf("fleet: ShedFraction %g outside [0,1]", c.ShedFraction)
	case c.ShedFraction > 0 && c.Queue.QueueDepth == 0:
		// Load-aware shedding triggers at ShedFraction * QueueDepth queued
		// requests; over an unbounded queue the threshold is 0 * anything and
		// the feature silently never fires. Reject the dead combination
		// instead of letting it masquerade as protection.
		return fmt.Errorf("fleet: ShedFraction %g requires a bounded queue (QueueDepth > 0): load-aware shedding never fires over an unbounded queue", c.ShedFraction)
	case c.RebalanceEvery < 0:
		return fmt.Errorf("fleet: RebalanceEvery must be >= 0, got %g", c.RebalanceEvery)
	case c.HistMin < 0 || c.HistMax < 0 || c.HistBuckets < 0:
		return fmt.Errorf("fleet: histogram shape must be non-negative")
	}
	// Cross-check the histogram shape after default resolution — the same
	// resolution histogram() applies — so a shape that only turns invalid once
	// defaults kick in (HistMin=20 with HistMax=0 -> 10) fails here rather
	// than panicking inside NewHistogram mid-Serve.
	if min, max, _ := c.histShape(); max <= min {
		return fmt.Errorf("fleet: HistMax %g must exceed HistMin %g after defaults (HistMin=1e-6, HistMax=10)", max, min)
	}
	if c.Placement == PlacementDedicated && c.Queue.EffectiveWorkers() < models {
		return fmt.Errorf("fleet: dedicated placement needs at least one worker per model (%d workers, %d models)",
			c.Queue.EffectiveWorkers(), models)
	}
	if c.Cache != nil {
		if c.Cache.Models() != models {
			return fmt.Errorf("fleet: cache tier built for %d models, pool has %d", c.Cache.Models(), models)
		}
		if c.Cache.Tenants() != tenants {
			return fmt.Errorf("fleet: cache tier built for %d tenants, pool has %d", c.Cache.Tenants(), tenants)
		}
	}
	return nil
}

// histShape resolves the configured histogram shape with zero-value defaults
// applied: 1us..10s across 28 log-spaced buckets, matching trace.ServerConfig.
func (c *Config) histShape() (min, max float64, n int) {
	min, max, n = c.HistMin, c.HistMax, c.HistBuckets
	if min == 0 {
		min = 1e-6
	}
	if max == 0 {
		max = 10
	}
	if n == 0 {
		n = 28
	}
	return min, max, n
}

// histogram builds a latency histogram with the configured shape.
func (c *Config) histogram() *trace.Histogram {
	return trace.NewHistogram(c.histShape())
}

// Request is one inference request in a fleet stream: a trace.Request tagged
// with the model it targets and the tenant it belongs to.
type Request struct {
	// Arrival is the arrival time in seconds from stream start.
	Arrival float64
	// Size is the batch size (samples).
	Size int
	// Deadline is an optional per-request completion deadline in seconds
	// after Arrival; 0 falls back to the tenant default, then the pool
	// default.
	Deadline float64
	// Model indexes the pool's model list.
	Model int
	// Tenant indexes the pool's tenant list.
	Tenant int
}

// Stream tags one single-model request trace with its model and tenant, for
// Merge.
type Stream struct {
	Model, Tenant int
	Reqs          []trace.Request
}

// Merge combines per-(model, tenant) request streams into one
// arrival-ordered fleet stream. The merge is stable: simultaneous arrivals
// keep their stream order, so a merged trace is a deterministic function of
// its inputs.
func Merge(streams ...Stream) []Request {
	var out []Request
	for _, s := range streams {
		for _, r := range s.Reqs {
			out = append(out, Request{
				Arrival:  r.Arrival,
				Size:     r.Size,
				Deadline: r.Deadline,
				Model:    s.Model,
				Tenant:   s.Tenant,
			})
		}
	}
	sortRequests(out)
	return out
}
