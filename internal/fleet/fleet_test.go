package fleet_test

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/fleet"
	"repro/internal/perf"
	"repro/internal/trace"
)

// constSvc is a time- and size-invariant service.
func constSvc(v float64) trace.TimedServiceFunc {
	return func(float64, int) (float64, error) { return v, nil }
}

// sizeSvc scales service time linearly with batch size.
func sizeSvc(perSample float64) trace.TimedServiceFunc {
	return func(_ float64, size int) (float64, error) { return perSample * float64(size), nil }
}

func eqNaN(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// oneTenant is the minimal tenant list.
func oneTenant() []fleet.TenantSpec {
	return []fleet.TenantSpec{{Name: "only"}}
}

func mustPool(t *testing.T, cfg fleet.Config, models []fleet.Model, tenants []fleet.TenantSpec) *fleet.Pool {
	t.Helper()
	p, err := fleet.NewPool(cfg, models, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustServe(t *testing.T, p *fleet.Pool, reqs []fleet.Request) *fleet.Report {
	t.Helper()
	rep, err := p.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// A higher-priority tenant arriving later dispatches before an
// earlier-arrived lower-priority one the moment the worker frees.
func TestFleetPriorityDispatch(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
	}
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Tenant: 0},
		{Arrival: 0.1, Size: 16, Tenant: 0},
		{Arrival: 0.2, Size: 16, Tenant: 1},
	}
	rep := mustServe(t, p, reqs)
	wantDisp := []float64{0, 2, 1} // hi (index 2) preempts the queued lo
	for i, w := range wantDisp {
		if rep.Dispatch[i] != w {
			t.Errorf("dispatch[%d] = %g, want %g", i, rep.Dispatch[i], w)
		}
	}
	wantSoj := []float64{1, 2.9, 1.8}
	for i, w := range wantSoj {
		if math.Abs(rep.Sojourn[i]-w) > 1e-9 {
			t.Errorf("sojourn[%d] = %g, want %g", i, rep.Sojourn[i], w)
		}
	}
	m := rep.Metrics
	if m.Tenants[1].Served != 1 || m.Tenants[0].Served != 2 || m.Served != 3 {
		t.Errorf("per-tenant served hi=%d lo=%d total=%d, want 1/2/3",
			m.Tenants[1].Served, m.Tenants[0].Served, m.Served)
	}
	if m.Policy != "priority-edf" || m.Placement != "packed" {
		t.Errorf("labels %q/%q, want priority-edf/packed", m.Policy, m.Placement)
	}
}

// Within one priority class the earlier absolute deadline dispatches first.
func TestFleetEDFWithinClass(t *testing.T) {
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1, Policy: trace.DegradeServe}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, oneTenant())
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16},
		{Arrival: 0.1, Size: 16, Deadline: 10}, // absolute 10.1
		{Arrival: 0.2, Size: 16, Deadline: 5},  // absolute 5.2 -> first
	}
	rep := mustServe(t, p, reqs)
	if rep.Dispatch[2] != 1 || rep.Dispatch[1] != 2 {
		t.Errorf("EDF order: dispatch = %v, want tighter deadline (index 2) at t=1", rep.Dispatch)
	}
}

// A tenant at its queue quota sheds with OutcomeShedQuota; dispatched
// requests free the quota again.
func TestFleetTenantQuota(t *testing.T) {
	tenants := []fleet.TenantSpec{{Name: "capped", Quota: 1}}
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16},   // dispatches immediately, quota back to 0
		{Arrival: 0.1, Size: 16}, // queued (1/1)
		{Arrival: 0.2, Size: 16}, // over quota -> shed
		{Arrival: 2.5, Size: 16}, // queue drained again -> admitted
	}
	rep := mustServe(t, p, reqs)
	want := []fleet.Outcome{fleet.OutcomeServed, fleet.OutcomeServed, fleet.OutcomeShedQuota, fleet.OutcomeServed}
	if !reflect.DeepEqual(rep.Outcomes, want) {
		t.Fatalf("outcomes %v, want %v", rep.Outcomes, want)
	}
	if rep.Metrics.ShedQuota != 1 || rep.Metrics.Tenants[0].ShedQuota != 1 {
		t.Errorf("quota shed counters pool=%d tenant=%d, want 1/1", rep.Metrics.ShedQuota, rep.Metrics.Tenants[0].ShedQuota)
	}
	if !math.IsNaN(rep.Sojourn[2]) || rep.Worker[2] != -1 || !math.IsNaN(rep.Service[2]) {
		t.Errorf("shed request leaked serving fields: sojourn=%g worker=%d", rep.Sojourn[2], rep.Worker[2])
	}
}

// Load-aware early shedding drops below-top-priority arrivals once the queue
// reaches ShedFraction of its bound, while top-priority arrivals keep the
// remaining headroom until the hard bound.
func TestFleetLoadShed(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
	}
	p := mustPool(t, fleet.Config{
		Queue:        trace.QueuePolicy{Workers: 1, QueueDepth: 4},
		ShedFraction: 0.5,
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Tenant: 0},    // dispatches at 0
		{Arrival: 0.10, Size: 16, Tenant: 0}, // queued 1
		{Arrival: 0.15, Size: 16, Tenant: 0}, // queued 2
		{Arrival: 0.20, Size: 16, Tenant: 0}, // queued >= 0.5*4 -> shed-load
		{Arrival: 0.25, Size: 16, Tenant: 1}, // hi rides through -> queued 3
		{Arrival: 0.30, Size: 16, Tenant: 1}, // queued 4
		{Arrival: 0.35, Size: 16, Tenant: 1}, // hard bound -> shed-queue
	}
	rep := mustServe(t, p, reqs)
	if rep.Outcomes[3] != fleet.OutcomeShedLoad {
		t.Errorf("low-priority arrival at fraction: %v, want shed-load", rep.Outcomes[3])
	}
	if rep.Outcomes[6] != fleet.OutcomeShedQueue {
		t.Errorf("top-priority arrival at hard bound: %v, want shed-queue", rep.Outcomes[6])
	}
	if rep.Outcomes[4] != fleet.OutcomeServed || rep.Outcomes[5] != fleet.OutcomeServed {
		t.Errorf("top-priority arrivals within bound were shed: %v", rep.Outcomes)
	}
	if rep.Metrics.ShedLoad != 1 || rep.Metrics.ShedQueue != 1 || rep.Metrics.MaxQueueDepth != 4 {
		t.Errorf("pool counters %+v", rep.Metrics)
	}
}

// Dedicated placement partitions the workers; each model only ever runs on
// its own block, and the interference ratio is exactly 1.
func TestFleetDedicatedIsolation(t *testing.T) {
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2},
		Placement: fleet.PlacementDedicated,
	}, []fleet.Model{
		{Name: "a", Service: constSvc(1.0)},
		{Name: "b", Service: constSvc(1.0)},
	}, oneTenant())
	if asg := p.InitialAssignment(); !reflect.DeepEqual(asg, fleet.Assignment{{0}, {1}}) {
		t.Fatalf("dedicated assignment %v, want [[0] [1]]", asg)
	}
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Model: 0},
		{Arrival: 0, Size: 16, Model: 1},
		{Arrival: 0.1, Size: 16, Model: 0},
		{Arrival: 0.1, Size: 16, Model: 1},
	}
	rep := mustServe(t, p, reqs)
	for i, r := range reqs {
		if rep.Worker[i] != r.Model {
			t.Errorf("request %d (model %d) ran on worker %d, want its dedicated worker", i, r.Model, rep.Worker[i])
		}
	}
	ratios, err := p.Interference(reqs, rep)
	if err != nil {
		t.Fatal(err)
	}
	for m, r := range ratios {
		if math.Abs(r-1) > 1e-12 {
			t.Errorf("model %d interference %g, want exactly 1 under dedicated placement", m, r)
		}
	}
}

// Packed placement consolidates light load onto the lowest worker; spread
// balances it across the pool.
func TestFleetPackedVsSpread(t *testing.T) {
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16},
		{Arrival: 1, Size: 16},
		{Arrival: 2, Size: 16},
		{Arrival: 3, Size: 16},
	}
	models := []fleet.Model{{Name: "m", Service: constSvc(0.5)}}

	packed := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 2}}, models, oneTenant())
	rep := mustServe(t, packed, reqs)
	if want := []int{0, 0, 0, 0}; !reflect.DeepEqual(rep.Worker, want) {
		t.Errorf("packed workers %v, want all on worker 0", rep.Worker)
	}

	spread := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2},
		Placement: fleet.PlacementSpread,
	}, models, oneTenant())
	rep = mustServe(t, spread, reqs)
	if want := []int{0, 1, 0, 1}; !reflect.DeepEqual(rep.Worker, want) {
		t.Errorf("spread workers %v, want alternating", rep.Worker)
	}
}

// The rebalance hook fires on the configured pacing, its returned assignment
// steers subsequent dispatch, and applied rebalances are counted.
func TestFleetRebalanceHook(t *testing.T) {
	var calls int32
	p := mustPool(t, fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 2},
		RebalanceEvery: 1,
		Rebalance: func(now float64, hist []fleet.LoadSnapshot, cur fleet.Assignment) fleet.Assignment {
			atomic.AddInt32(&calls, 1)
			if len(hist) == 0 || len(hist[len(hist)-1].Workers) != 2 {
				t.Errorf("rebalance history %v, want a snapshot of 2 workers", hist)
			}
			return fleet.Assignment{{1}} // pin the model to worker 1
		},
	}, []fleet.Model{{Name: "m", Service: constSvc(0.1)}}, oneTenant())
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16},   // before any rebalance: packed -> worker 0
		{Arrival: 1.5, Size: 16}, // rebalance fires, then dispatch on worker 1
		{Arrival: 1.6, Size: 16},
	}
	rep := mustServe(t, p, reqs)
	if want := []int{0, 1, 1}; !reflect.DeepEqual(rep.Worker, want) {
		t.Errorf("workers %v, want %v after rebalance", rep.Worker, want)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Errorf("rebalance hook ran %d times, want 1 (paced at 1s over a 1.6s trace)", got)
	}
	if rep.Metrics.Rebalances != 1 {
		t.Errorf("Rebalances = %d, want 1", rep.Metrics.Rebalances)
	}
}

// An invalid assignment from the hook fails the run loudly.
func TestFleetRebalanceInvalid(t *testing.T) {
	p := mustPool(t, fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 2},
		RebalanceEvery: 1,
		Rebalance: func(float64, []fleet.LoadSnapshot, fleet.Assignment) fleet.Assignment {
			return fleet.Assignment{{5}}
		},
	}, []fleet.Model{{Name: "m", Service: constSvc(0.1)}}, oneTenant())
	_, err := p.Serve([]fleet.Request{{Arrival: 0, Size: 16}, {Arrival: 2, Size: 16}})
	if err == nil || !strings.Contains(err.Error(), "rebalance") {
		t.Fatalf("invalid rebalance assignment: err = %v, want rebalance error", err)
	}
}

// A supervised model on the pool keeps the exact single-model drift
// semantics: the scripted scenario from the trace package's swap-semantics
// test reproduces through the fleet — same generation stamps, same sojourns,
// same swap event, tune occupancy attributed to the pool worker, and the
// supervisor's LiveSet and metrics snapshot published as under Run.
func TestFleetSupervisedSwapSemantics(t *testing.T) {
	gen0 := constSvc(1e-3)
	gen1 := constSvc(5e-4)
	detect := func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= 10, nil
	}
	retune := func(gen int, win []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return gen1, nil
	}
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 1},
		Window:       2,
		CheckEvery:   1,
		TuneDuration: 0.5,
		MaxRetunes:   1,
	}, gen0, detect, retune)
	if err != nil {
		t.Fatal(err)
	}
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "drifty", Supervisor: sv}}, oneTenant())
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16},
		{Arrival: 1, Size: 16},
		{Arrival: 10, Size: 16},
		{Arrival: 10.2, Size: 16},
		{Arrival: 12, Size: 32},
	}
	rep := mustServe(t, p, reqs)

	if want := []int{0, 0, 0, 0, 1}; !reflect.DeepEqual(rep.Generations, want) {
		t.Fatalf("generation stamps %v, want %v", rep.Generations, want)
	}
	wantSoj := []float64{1e-3, 1e-3, 0.501, 10.502 - 10.2, 5e-4}
	for i, w := range wantSoj {
		if math.Abs(rep.Sojourn[i]-w) > 1e-9 {
			t.Errorf("sojourn[%d] = %g, want %g", i, rep.Sojourn[i], w)
		}
	}

	mr := rep.ModelReports[0]
	if mr.Metrics.Generation != 1 || len(mr.Metrics.Swaps) != 1 {
		t.Fatalf("model report: generation %d, %d swaps, want 1/1", mr.Metrics.Generation, len(mr.Metrics.Swaps))
	}
	s := mr.Metrics.Swaps[0]
	if s.Generation != 1 || s.Detected != 10 || s.Start != 10 || s.Swapped != 10.5 ||
		s.Worker != 0 || s.TuneDuration != 0.5 {
		t.Errorf("swap event %+v, want gen 1 detected/start 10, swapped 10.5 on worker 0", s)
	}
	if !reflect.DeepEqual(mr.Generations, rep.Generations) {
		t.Errorf("model report generations %v != fleet stamps %v", mr.Generations, rep.Generations)
	}

	// The tune's 0.5s occupies the shared pool worker.
	if got := rep.Metrics.Workers[0].TuneBusy; got != 0.5 {
		t.Errorf("pool worker TuneBusy %g, want 0.5", got)
	}
	if mr.Metrics.TuneBusy != 0.5 {
		t.Errorf("model TuneBusy %g, want 0.5", mr.Metrics.TuneBusy)
	}
	if g := sv.Live().Current(); g.ID != 1 || g.Swapped != 10.5 {
		t.Errorf("live generation %d swapped %g, want 1 at 10.5", g.ID, g.Swapped)
	}
	if snap := sv.Metrics(); snap == nil || snap.Generation != 1 || len(snap.Swaps) != 1 {
		t.Errorf("supervisor metrics snapshot missing the fleet run's swap")
	}
}

// Two models contending for one worker: the model that waits shows an
// interference ratio above 1, and the solo replay baseline is exact.
func TestFleetInterferenceContended(t *testing.T) {
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{
			{Name: "a", Service: constSvc(1.0)},
			{Name: "b", Service: constSvc(1.0)},
		}, oneTenant())
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Model: 0},
		{Arrival: 0.1, Size: 16, Model: 1}, // waits 0.9s behind model a
	}
	rep := mustServe(t, p, reqs)
	ratios, err := p.Interference(reqs, rep)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ratios[0]-1) > 1e-12 {
		t.Errorf("model a interference %g, want 1 (it never waited)", ratios[0])
	}
	if want := 1.9 / 1.0; math.Abs(ratios[1]-want) > 1e-9 {
		t.Errorf("model b interference %g, want %g", ratios[1], want)
	}
}

// eqFleetReports compares two fleet reports field by field with NaN-tolerant
// float comparison.
func eqFleetReports(t *testing.T, a, b *fleet.Report) {
	t.Helper()
	if len(a.Sojourn) != len(b.Sojourn) {
		t.Fatalf("report lengths differ: %d vs %d", len(a.Sojourn), len(b.Sojourn))
	}
	for i := range a.Sojourn {
		if !eqNaN(a.Sojourn[i], b.Sojourn[i]) || a.Outcomes[i] != b.Outcomes[i] ||
			a.Generations[i] != b.Generations[i] || !eqNaN(a.Dispatch[i], b.Dispatch[i]) ||
			a.Worker[i] != b.Worker[i] || !eqNaN(a.Service[i], b.Service[i]) {
			t.Fatalf("request %d differs between replays", i)
		}
	}
	am, bm := a.Metrics, b.Metrics
	if am.Served != bm.Served || am.Timeouts != bm.Timeouts || am.Shed() != bm.Shed() ||
		am.MaxQueueDepth != bm.MaxQueueDepth || am.Makespan != bm.Makespan ||
		am.Rebalances != bm.Rebalances {
		t.Fatalf("pool metrics differ: %v vs %v", am, bm)
	}
	for g := range am.Models {
		if am.Models[g].String() != bm.Models[g].String() || !eqNaN(am.Models[g].P99, bm.Models[g].P99) {
			t.Fatalf("model %d metrics differ", g)
		}
	}
	for g := range am.Tenants {
		if am.Tenants[g].String() != bm.Tenants[g].String() || !eqNaN(am.Tenants[g].P99, bm.Tenants[g].P99) {
			t.Fatalf("tenant %d metrics differ", g)
		}
	}
	for m := range a.ModelReports {
		if a.ModelReports[m].Metrics.Generation != b.ModelReports[m].Metrics.Generation ||
			len(a.ModelReports[m].Metrics.Swaps) != len(b.ModelReports[m].Metrics.Swaps) {
			t.Fatalf("model %d swap history differs", m)
		}
	}
}

// driftyModel builds a fresh supervised model whose detector fires once the
// window reaches driftAt and whose retune speeds the service up.
func driftyModel(t *testing.T, name string, base float64, driftAt float64) fleet.Model {
	t.Helper()
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{
		Server:       trace.ServerConfig{Workers: 1},
		Window:       8,
		CheckEvery:   4,
		TuneDuration: 0.02,
		MaxRetunes:   1,
		Cooldown:     0.5,
	}, constSvc(base), func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= driftAt, nil
	}, func(gen int, _ []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return constSvc(base / 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return fleet.Model{Name: name, Supervisor: sv}
}

// fleetStream builds a deterministic two-model, two-tenant stream.
func fleetStream(t *testing.T, n int, seed int64) []fleet.Request {
	t.Helper()
	mk := func(seed int64) []trace.Request {
		reqs, err := trace.Generate(n, trace.GeneratorConfig{
			QPS: 600, MaxBatch: 256, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return reqs
	}
	return fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: mk(seed)},
		fleet.Stream{Model: 1, Tenant: 1, Reqs: mk(seed + 1)},
	)
}

// The replay is exact: two identical pools over the same stream produce
// identical reports, including supervised models' swap histories.
func TestFleetDeterminism(t *testing.T) {
	run := func() *fleet.Report {
		models := []fleet.Model{
			driftyModel(t, "a", 2e-3, 0.3),
			driftyModel(t, "b", 1e-3, 0.6),
		}
		tenants := []fleet.TenantSpec{
			{Name: "lo", Priority: 0, Quota: 32},
			{Name: "hi", Priority: 1, Deadline: 0.05},
		}
		p := mustPool(t, fleet.Config{
			Queue:        trace.QueuePolicy{Workers: 3, QueueDepth: 64},
			Placement:    fleet.PlacementSpread,
			ShedFraction: 0.75,
		}, models, tenants)
		return mustServe(t, p, fleetStream(t, 400, 7))
	}
	a, b := run(), run()
	eqFleetReports(t, a, b)
	if a.ModelReports[0].Metrics.Generation == 0 && a.ModelReports[1].Metrics.Generation == 0 {
		t.Fatalf("determinism run exercised no swaps; strengthen the scenario")
	}
}

// Serve input validation and policy misbehavior surface as errors, not
// corrupted reports.
func TestFleetServeErrors(t *testing.T) {
	p := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: constSvc(1e-3)}}, oneTenant())
	cases := []struct {
		name string
		reqs []fleet.Request
		want string
	}{
		{"empty", nil, "empty request stream"},
		{"bad model", []fleet.Request{{Arrival: 0, Size: 16, Model: 7}}, "unknown model"},
		{"bad tenant", []fleet.Request{{Arrival: 0, Size: 16, Tenant: 2}}, "unknown tenant"},
		{"bad size", []fleet.Request{{Arrival: 0, Size: 0}}, "non-positive size"},
		{"bad deadline", []fleet.Request{{Arrival: 0, Size: 16, Deadline: -1}}, "negative deadline"},
	}
	for _, tc := range cases {
		if _, err := p.Serve(tc.reqs); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}

	bad := mustPool(t, fleet.Config{Queue: trace.QueuePolicy{Workers: 1}},
		[]fleet.Model{{Name: "m", Service: func(float64, int) (float64, error) { return -1, nil }}}, oneTenant())
	if _, err := bad.Serve([]fleet.Request{{Arrival: 0, Size: 16}}); err == nil ||
		!strings.Contains(err.Error(), "negative service time") {
		t.Errorf("negative service: err = %v", err)
	}
}

// NewPool rejects malformed configurations with specific errors.
func TestNewPoolErrors(t *testing.T) {
	okModels := []fleet.Model{{Name: "m", Service: constSvc(1e-3)}}
	okQueue := trace.QueuePolicy{Workers: 2}
	sv, err := trace.NewSupervisor(trace.SupervisorConfig{},
		constSvc(1e-3),
		func([]trace.WindowEntry) (bool, error) { return false, nil },
		func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		cfg     fleet.Config
		models  []fleet.Model
		tenants []fleet.TenantSpec
		want    string
	}{
		{"no models", fleet.Config{Queue: okQueue}, nil, oneTenant(), "at least one model"},
		{"no tenants", fleet.Config{Queue: okQueue}, okModels, nil, "at least one tenant"},
		{"dead shed fraction", fleet.Config{Queue: okQueue, ShedFraction: 0.5}, okModels, oneTenant(), "bounded queue"},
		{"placement", fleet.Config{Queue: okQueue, Placement: fleet.Strategy(9)}, okModels, oneTenant(), "placement"},
		{"shed fraction", fleet.Config{Queue: okQueue, ShedFraction: 1.5}, okModels, oneTenant(), "ShedFraction"},
		{"rebalance pacing", fleet.Config{Queue: okQueue, RebalanceEvery: -1}, okModels, oneTenant(), "RebalanceEvery"},
		{"histogram", fleet.Config{Queue: okQueue, HistMin: 2, HistMax: 1}, okModels, oneTenant(), "HistMax"},
		// Regression: inverted only after defaults resolve (HistMax=0 -> 10,
		// HistMin=0 -> 1e-6); used to pass validation and panic mid-Serve.
		{"histogram defaulted max", fleet.Config{Queue: okQueue, HistMin: 20}, okModels, oneTenant(), "HistMax"},
		{"histogram defaulted min", fleet.Config{Queue: okQueue, HistMax: 1e-9}, okModels, oneTenant(), "HistMax"},
		{"dedicated short", fleet.Config{Queue: trace.QueuePolicy{Workers: 1}, Placement: fleet.PlacementDedicated},
			[]fleet.Model{{Name: "a", Service: constSvc(1)}, {Name: "b", Service: constSvc(1)}}, oneTenant(),
			"one worker per model"},
		{"nameless model", fleet.Config{Queue: okQueue}, []fleet.Model{{Service: constSvc(1)}}, oneTenant(), "model name"},
		{"both set", fleet.Config{Queue: okQueue},
			[]fleet.Model{{Name: "m", Service: constSvc(1), Supervisor: sv}}, oneTenant(), "mutually exclusive"},
		{"neither set", fleet.Config{Queue: okQueue}, []fleet.Model{{Name: "m"}}, oneTenant(), "one of Service or Supervisor"},
		{"dup supervisor", fleet.Config{Queue: okQueue},
			[]fleet.Model{{Name: "a", Supervisor: sv}, {Name: "b", Supervisor: sv}}, oneTenant(), "share one supervisor"},
		{"nameless tenant", fleet.Config{Queue: okQueue}, okModels, []fleet.TenantSpec{{}}, "tenant name"},
		{"bad quota", fleet.Config{Queue: okQueue}, okModels, []fleet.TenantSpec{{Name: "t", Quota: -1}}, "Quota"},
		{"bad tenant deadline", fleet.Config{Queue: okQueue}, okModels, []fleet.TenantSpec{{Name: "t", Deadline: -1}}, "Deadline"},
	}
	for _, tc := range cases {
		if _, err := fleet.NewPool(tc.cfg, tc.models, tc.tenants); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

func TestParseRoundTrips(t *testing.T) {
	for _, s := range []fleet.Strategy{fleet.PlacementPacked, fleet.PlacementSpread, fleet.PlacementDedicated} {
		got, err := fleet.ParseStrategy(s.String())
		if err != nil || got != s {
			t.Errorf("ParseStrategy(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := fleet.ParseStrategy("bogus"); err == nil {
		t.Error("ParseStrategy accepted bogus input")
	}
	tenants := oneTenant()
	for _, name := range []string{"priority-edf", "priority", "edf", "fifo", "weighted-fair", "wfq", "drr"} {
		if _, err := fleet.ParsePolicy(name, tenants, 0, nil); err != nil {
			t.Errorf("ParsePolicy(%q): %v", name, err)
		}
	}
	if _, err := fleet.ParsePolicy("bogus", tenants, 0, nil); err == nil {
		t.Error("ParsePolicy accepted bogus input")
	}
	if _, err := fleet.ParsePolicy("weighted-fair", tenants, 0, map[int]float64{7: 2}); err == nil {
		t.Error("ParsePolicy accepted a weight for a priority no tenant has")
	}
}

// Merge interleaves streams by arrival, stably.
func TestMergeStable(t *testing.T) {
	merged := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: []trace.Request{{Arrival: 0, Size: 16}, {Arrival: 2, Size: 16}}},
		fleet.Stream{Model: 1, Tenant: 1, Reqs: []trace.Request{{Arrival: 0, Size: 32}, {Arrival: 1, Size: 32}}},
	)
	wantModels := []int{0, 1, 1, 0}
	for i, w := range wantModels {
		if merged[i].Model != w {
			t.Fatalf("merge order: %+v, want models %v", merged, wantModels)
		}
	}
	if merged[0].Size != 16 || merged[1].Size != 32 {
		t.Errorf("simultaneous arrivals lost stream order: %+v", merged[:2])
	}
}

// FIFO dispatches strictly in arrival order regardless of priority — the
// contrast baseline for the noisy-neighbor study.
func TestFleetFIFOIgnoresPriority(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
	}
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 1},
		Admission: fleet.FIFO{},
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Tenant: 0},
		{Arrival: 0.1, Size: 16, Tenant: 0},
		{Arrival: 0.2, Size: 16, Tenant: 1},
	}
	rep := mustServe(t, p, reqs)
	if rep.Dispatch[1] != 1 || rep.Dispatch[2] != 2 {
		t.Errorf("FIFO dispatch %v, want strict arrival order", rep.Dispatch)
	}
	if rep.Metrics.Policy != "fifo" {
		t.Errorf("policy label %q, want fifo", rep.Metrics.Policy)
	}
}

// Two supervised models hot-swap concurrently on one shared pool while
// readers hammer both LiveSets: generations stay monotone per model, no
// request is lost, and no torn generation is ever observed. Run with -race.
func TestFleetTwoModelsHotSwapUnderLoad(t *testing.T) {
	models := []fleet.Model{
		driftyModel(t, "a", 2e-3, 0.2),
		driftyModel(t, "b", 1e-3, 0.5),
	}
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
	}
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 256},
		Placement: fleet.PlacementSpread,
	}, models, tenants)
	reqs := fleetStream(t, 1500, 99)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := range models {
		sv := models[m].Supervisor
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				last := -1
				for {
					select {
					case <-stop:
						return
					default:
					}
					g := sv.Live().Current()
					if g == nil || g.Service == nil {
						t.Error("torn LiveSet read: nil generation or service")
						return
					}
					if g.ID < last {
						t.Errorf("LiveSet generation regressed: %d after %d", g.ID, last)
						return
					}
					last = g.ID
				}
			}()
		}
	}

	rep, err := p.Serve(reqs)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	// Zero lost requests: every request resolves exactly once, and the
	// serving fields are consistent with the outcome.
	perModel := make([]int, len(models))
	for i := range reqs {
		if rep.Outcomes[i] == fleet.OutcomeServed {
			if math.IsNaN(rep.Sojourn[i]) || rep.Worker[i] < 0 {
				t.Fatalf("request %d served but missing serving fields", i)
			}
		} else if !math.IsNaN(rep.Sojourn[i]) {
			t.Fatalf("request %d shed but has a sojourn", i)
		}
		perModel[reqs[i].Model]++
	}
	for m := range models {
		mm := rep.Metrics.Models[m]
		if mm.Served+mm.Shed() != perModel[m] {
			t.Errorf("model %d: served %d + shed %d != %d requests (lost requests)",
				m, mm.Served, mm.Shed(), perModel[m])
		}
	}

	// Both models swapped, and their generation stamps are monotone in
	// arrival order.
	lastGen := make([]int, len(models))
	for i := range reqs { // reqs from Merge are arrival-sorted
		m := reqs[i].Model
		if g := rep.Generations[i]; g < lastGen[m] {
			t.Fatalf("model %d generation stamp regressed: %d after %d", m, g, lastGen[m])
		} else {
			lastGen[m] = g
		}
	}
	for m := range models {
		if rep.ModelReports[m].Metrics.Generation == 0 {
			t.Errorf("model %d never swapped; the stress scenario lost its teeth", m)
		}
		if g := models[m].Supervisor.Live().Current(); g.ID != rep.ModelReports[m].Metrics.Generation {
			t.Errorf("model %d live generation %d != report generation %d",
				m, g.ID, rep.ModelReports[m].Metrics.Generation)
		}
	}
}

// BenchmarkFleetServe delegates to the shared hot-path body in internal/perf,
// which also backs the recflex-bench -perf emitter and the BENCH_*.json
// perf gate.
func BenchmarkFleetServe(b *testing.B) { perf.FleetServe(b) }

// BenchmarkElasticServe covers the elastic heterogeneous pool's hot path:
// preemption scans at chunk boundaries, autoscale polling and per-class
// service scaling layered over the FleetServe replay loop.
func BenchmarkElasticServe(b *testing.B) { perf.ElasticServe(b) }
