package fleet_test

import (
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// twoClassTenants is the canonical weighted-fair scenario: an interactive
// class at priority 1 and a batch class at priority 0.
func twoClassTenants() []fleet.TenantSpec {
	return []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0},
	}
}

func mustWeightedFair(t *testing.T, tenants []fleet.TenantSpec, cfg fleet.WeightedFairConfig) *fleet.WeightedFair {
	t.Helper()
	p, err := fleet.NewWeightedFair(tenants, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Under sustained two-class backlog, DRR gives the batch class its weight
// share of dispatches instead of starving it: with weights 3:1 and equal
// request sizes the steady-state dispatch cycle is one batch request per
// three interactive ones.
func TestWeightedFairShareUnderBacklog(t *testing.T) {
	tenants := twoClassTenants()
	wf := mustWeightedFair(t, tenants, fleet.WeightedFairConfig{
		Weights: map[int]float64{1: 3, 0: 1},
		Quantum: 128,
	})
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 1},
		Admission: wf,
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)

	// 24 requests per class, all backlogged within the first service time.
	var reqs []fleet.Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs,
			fleet.Request{Arrival: float64(i) * 0.01, Size: 128, Tenant: 0},
			fleet.Request{Arrival: float64(i)*0.01 + 0.005, Size: 128, Tenant: 1},
		)
	}
	rep := mustServe(t, p, reqs)

	// Order requests by dispatch time and count the batch class's share over
	// the prefix where both classes are still backlogged: the interactive
	// class's 24 requests last through the first 32 dispatches at a 3/4 share.
	type disp struct {
		t      float64
		tenant int
	}
	var order []disp
	for i := range reqs {
		if rep.Outcomes[i] != fleet.OutcomeServed {
			t.Fatalf("request %d not served: %v", i, rep.Outcomes[i])
		}
		order = append(order, disp{rep.Dispatch[i], reqs[i].Tenant})
	}
	sort.Slice(order, func(a, b int) bool { return order[a].t < order[b].t })
	batch := 0
	for _, d := range order[:32] {
		if d.tenant == 1 {
			batch++
		}
	}
	// Weight share is 1/4 of 32; allow +-2 dispatches of DRR startup slack.
	if batch < 6 || batch > 10 {
		t.Errorf("batch class got %d of the first 32 dispatches, want ~8 (weight share 1/4)", batch)
	}
	if got := wf.WeightShare(0); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("WeightShare(0) = %g, want 0.25", got)
	}
	if rep.Metrics.Policy != "weighted-fair" {
		t.Errorf("policy label %q, want weighted-fair", rep.Metrics.Policy)
	}
}

// A zero-weight class is best-effort: it dispatches only when no positively
// weighted class has an eligible request.
func TestWeightedFairZeroWeightBestEffort(t *testing.T) {
	tenants := twoClassTenants()
	wf := mustWeightedFair(t, tenants, fleet.WeightedFairConfig{
		Weights: map[int]float64{1: 1, 0: 0},
	})
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 1},
		Admission: wf,
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Tenant: 0},    // dispatches at 0
		{Arrival: 0.05, Size: 16, Tenant: 1}, // batch, arrives second
		{Arrival: 0.1, Size: 16, Tenant: 0},
		{Arrival: 0.2, Size: 16, Tenant: 0},
	}
	rep := mustServe(t, p, reqs)
	// Interactive requests dispatch at t=0,1,2; the zero-weight batch request
	// waits for the interactive backlog to drain despite arriving first.
	if rep.Dispatch[1] != 3 {
		t.Errorf("zero-weight batch dispatched at t=%g, want 3 (after every interactive request)", rep.Dispatch[1])
	}
	if rep.Dispatch[2] != 1 || rep.Dispatch[3] != 2 {
		t.Errorf("interactive dispatches %g/%g, want 1/2", rep.Dispatch[2], rep.Dispatch[3])
	}
}

// Admission mirrors PriorityEDF: quotas, load-aware shedding and the shared
// bound all fire with their distinct outcomes.
func TestWeightedFairAdmissionCauses(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
		{Name: "capped", Priority: 1, Quota: 1},
	}
	wf := mustWeightedFair(t, tenants, fleet.WeightedFairConfig{ShedFraction: 0.5})
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 1, QueueDepth: 4},
		Admission: wf,
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Tenant: 2},    // dispatches at 0
		{Arrival: 0.05, Size: 16, Tenant: 2}, // queued, quota 1/1
		{Arrival: 0.10, Size: 16, Tenant: 2}, // over quota
		{Arrival: 0.15, Size: 16, Tenant: 0}, // queued 2
		{Arrival: 0.20, Size: 16, Tenant: 0}, // queued >= 0.5*4 -> load shed
		{Arrival: 0.25, Size: 16, Tenant: 1}, // queued 3
		{Arrival: 0.30, Size: 16, Tenant: 1}, // queued 4
		{Arrival: 0.35, Size: 16, Tenant: 1}, // hard bound
	}
	rep := mustServe(t, p, reqs)
	if rep.Outcomes[2] != fleet.OutcomeShedQuota || rep.Outcomes[4] != fleet.OutcomeShedLoad ||
		rep.Outcomes[7] != fleet.OutcomeShedQueue {
		t.Errorf("outcomes %v, want quota/load/queue sheds at 2/4/7", rep.Outcomes)
	}
}

// NewWeightedFair rejects malformed configurations loudly.
func TestWeightedFairConfigErrors(t *testing.T) {
	tenants := twoClassTenants()
	cases := []struct {
		name    string
		tenants []fleet.TenantSpec
		cfg     fleet.WeightedFairConfig
		want    string
	}{
		{"no tenants", nil, fleet.WeightedFairConfig{}, "at least one tenant"},
		{"negative quantum", tenants, fleet.WeightedFairConfig{Quantum: -1}, "Quantum"},
		{"unknown class", tenants, fleet.WeightedFairConfig{Weights: map[int]float64{7: 1}}, "matches no tenant"},
		{"negative weight", tenants, fleet.WeightedFairConfig{Weights: map[int]float64{1: -2}}, "finite and >= 0"},
		{"nan weight", tenants, fleet.WeightedFairConfig{Weights: map[int]float64{1: math.NaN()}}, "finite and >= 0"},
		{"all zero", tenants, fleet.WeightedFairConfig{Weights: map[int]float64{1: 0, 0: 0}}, "positive weight"},
	}
	for _, tc := range cases {
		if _, err := fleet.NewWeightedFair(tc.tenants, tc.cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want %q", tc.name, err, tc.want)
		}
	}
}

// The policy is stateful across dispatches (deficit counters, round cursor),
// and Pool.Serve resets it per replay: reusing one pool for the same stream
// twice yields byte-identical reports.
func TestWeightedFairPoolReuseDeterminism(t *testing.T) {
	tenants := twoClassTenants()
	wf := mustWeightedFair(t, tenants, fleet.WeightedFairConfig{
		Weights: map[int]float64{1: 2, 0: 1},
	})
	p := mustPool(t, fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 32},
		Admission: wf,
	}, []fleet.Model{
		{Name: "a", Service: sizeSvc(2e-3)},
		{Name: "b", Service: sizeSvc(1e-3)},
	}, tenants)
	reqs := fleetStream(t, 300, 11)
	a := mustServe(t, p, reqs)
	b := mustServe(t, p, reqs)
	eqFleetReports(t, a, b)
}
