package fleet

import (
	"reflect"
	"testing"
)

// Regression: assign() used to build the packed/spread assignment by sharing
// one backing slice across every model's row, so a caller editing one model's
// workers (for example a rebalance hook that trims a cloned row in place)
// silently edited every model's. Each row must own its storage.
func TestAssignRowsDoNotAlias(t *testing.T) {
	for _, s := range []Strategy{PlacementPacked, PlacementSpread} {
		asg, err := assign(s, 3, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		asg[0][0] = 99
		for m := 1; m < len(asg); m++ {
			if asg[m][0] == 99 {
				t.Errorf("%v: mutating model 0's row leaked into model %d's row (shared backing array)", s, m)
			}
		}
	}
}

// apportionWorkers distributes the pool by largest remainder with a one-worker
// floor, deterministically.
func TestApportionWorkers(t *testing.T) {
	cases := []struct {
		name  string
		share []float64
		k     int
		want  []int
	}{
		{"even", []float64{1, 1}, 4, []int{2, 2}},
		{"proportional", []float64{3, 1}, 4, []int{3, 1}},
		{"zero demand keeps floor", []float64{1, 0}, 4, []int{3, 1}},
		{"floors reclaim overshoot", []float64{0.5, 0.5, 2}, 3, []int{1, 1, 1}},
		{"largest remainder wins", []float64{5, 1, 1}, 8, []int{6, 1, 1}},
	}
	for _, tc := range cases {
		var total float64
		for _, s := range tc.share {
			total += s
		}
		if got := apportionWorkers(tc.share, total, tc.k); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: apportionWorkers(%v, %d) = %v, want %v", tc.name, tc.share, tc.k, got, tc.want)
		}
	}
}
