package fleet

import (
	"fmt"
	"math"
	"sort"
)

// defaultQuantum is the deficit credit (in samples) granted per round per
// unit of weight when WeightedFairConfig.Quantum is 0. It is on the order of
// one typical request, so classes interleave at request granularity instead
// of taking long turns.
const defaultQuantum = 256

// WeightedFairConfig shapes NewWeightedFair.
type WeightedFairConfig struct {
	// Weights maps a tenant priority class to its dispatch weight. Every
	// distinct priority among the pool's tenants forms one class; classes
	// absent from the map default to weight 1. A zero weight makes the class
	// best-effort: it dispatches only when no positively weighted class has
	// an eligible request. Weights must be non-negative and at least one
	// class must end up positive.
	Weights map[int]float64
	// Quantum is the deficit credit in request-size samples granted to a
	// class per round per unit of weight; 0 defaults to 256. Smaller quanta
	// interleave classes more finely, larger ones amortize switching into
	// longer per-class turns.
	Quantum float64
	// ShedFraction arms the same load-aware early shedding as PriorityEDF:
	// once queue occupancy reaches this fraction of the shared bound, an
	// arrival below the pool's highest priority class is shed. 0 disables.
	ShedFraction float64
}

// WeightedFair is the fairness-preserving admission policy: deficit round
// robin (DRR) between priority classes with configurable per-class weights,
// earliest-deadline-first within a class. Where strict PriorityEDF lets a
// backlogged high-priority class starve batch tenants indefinitely, DRR
// guarantees every positively weighted class a long-run share of dispatched
// work (request sizes are the cost unit) proportional to its weight, while
// it stays backlogged: each round a class's deficit counter earns
// Quantum x weight credit, dispatching spends the request's size, and a
// class whose credit is exhausted cedes the worker until the round returns
// to it. Credit does not bank across idle periods — a class with nothing
// eligible is reset to zero, so a returning burst cannot claim saved-up
// time.
//
// Admission mirrors PriorityEDF (tenant quotas, optional load-aware early
// shedding, the shared queue bound); only the dispatch order differs. The
// policy is stateful across dispatches and deterministic; Pool.Serve resets
// the state at the start of every replay, so a reused Pool stays exactly
// reproducible.
type WeightedFair struct {
	tenants      []TenantSpec
	shedFraction float64
	maxPriority  int
	quantum      float64

	classes []int           // distinct priorities, descending
	weight  map[int]float64 // by priority class
	deficit []float64       // by class index
	cursor  int
	scratch []int // per-class EDF-best eligible index, reused
}

// NewWeightedFair builds the weighted-fair policy over the pool's tenants.
func NewWeightedFair(tenants []TenantSpec, cfg WeightedFairConfig) (*WeightedFair, error) {
	if len(tenants) == 0 {
		return nil, fmt.Errorf("fleet: weighted-fair needs at least one tenant")
	}
	if cfg.Quantum < 0 {
		return nil, fmt.Errorf("fleet: weighted-fair Quantum must be >= 0, got %g", cfg.Quantum)
	}
	quantum := cfg.Quantum
	if quantum == 0 {
		quantum = defaultQuantum
	}
	seen := make(map[int]bool)
	var classes []int
	maxPrio := math.MinInt
	for _, t := range tenants {
		if !seen[t.Priority] {
			seen[t.Priority] = true
			classes = append(classes, t.Priority)
		}
		if t.Priority > maxPrio {
			maxPrio = t.Priority
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(classes)))
	weight := make(map[int]float64, len(classes))
	for _, prio := range classes {
		weight[prio] = 1
	}
	for prio, w := range cfg.Weights {
		if !seen[prio] {
			return nil, fmt.Errorf("fleet: weighted-fair weight for priority %d matches no tenant", prio)
		}
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("fleet: weighted-fair weight for priority %d must be finite and >= 0, got %g", prio, w)
		}
		weight[prio] = w
	}
	positive := false
	for _, prio := range classes {
		if weight[prio] > 0 {
			positive = true
			break
		}
	}
	if !positive {
		return nil, fmt.Errorf("fleet: weighted-fair needs at least one class with positive weight")
	}
	return &WeightedFair{
		tenants:      append([]TenantSpec(nil), tenants...),
		shedFraction: cfg.ShedFraction,
		maxPriority:  maxPrio,
		quantum:      quantum,
		classes:      classes,
		weight:       weight,
		deficit:      make([]float64, len(classes)),
		scratch:      make([]int, len(classes)),
	}, nil
}

// Name implements AdmissionPolicy.
func (p *WeightedFair) Name() string { return "weighted-fair" }

// WeightShare returns priority class prio's fraction of the total configured
// weight — the long-run share of dispatched work the class is guaranteed
// while it stays backlogged. 0 for an unknown or zero-weight class.
func (p *WeightedFair) WeightShare(prio int) float64 {
	var total float64
	for _, c := range p.classes {
		total += p.weight[c]
	}
	if total == 0 {
		return 0
	}
	return p.weight[prio] / total
}

// Reset clears the DRR dispatch state (deficit counters and round cursor).
// Pool.Serve calls it at the start of every replay so a reused Pool starts
// each run from the same state.
func (p *WeightedFair) Reset() {
	for i := range p.deficit {
		p.deficit[i] = 0
	}
	p.cursor = 0
}

// Admit implements AdmissionPolicy; the order matches PriorityEDF: tenant
// quota first, then load-aware early shedding, then the shared queue bound.
func (p *WeightedFair) Admit(r QueuedRequest, load PoolLoad) (bool, Outcome) {
	if q := p.tenants[r.Tenant].Quota; q > 0 && load.QueuedByTenant[r.Tenant] >= q {
		return false, OutcomeShedQuota
	}
	if load.QueueDepth > 0 {
		if p.shedFraction > 0 && r.Priority < p.maxPriority &&
			float64(load.Queued) >= p.shedFraction*float64(load.QueueDepth) {
			return false, OutcomeShedLoad
		}
		if load.Queued >= load.QueueDepth {
			return false, OutcomeShedQueue
		}
	}
	return true, OutcomeServed
}

// Next implements AdmissionPolicy: deficit round robin over the priority
// classes, EDF within the class at the cursor. The loop terminates because
// every full round grants positive credit to at least one eligible,
// positively weighted class.
func (p *WeightedFair) Next(eligible []QueuedRequest, _ float64) int {
	// EDF-best eligible entry per class (-1 when the class has none).
	best := p.scratch
	for ci := range best {
		best[ci] = -1
	}
	classIdx := func(prio int) int {
		for ci, c := range p.classes {
			if c == prio {
				return ci
			}
		}
		return -1
	}
	anyPositive := false
	for i := range eligible {
		ci := classIdx(eligible[i].Priority)
		if ci < 0 {
			continue
		}
		if best[ci] < 0 || edfBefore(eligible[i], eligible[best[ci]]) {
			best[ci] = i
		}
		if p.weight[p.classes[ci]] > 0 {
			anyPositive = true
		}
	}
	if !anyPositive {
		// Only best-effort (zero-weight) classes are eligible: fall back to
		// priority-then-EDF over everything, spending no credit.
		pick := 0
		for i := 1; i < len(eligible); i++ {
			if edfBefore(eligible[i], eligible[pick]) {
				pick = i
			}
		}
		return pick
	}
	for {
		ci := p.cursor
		w := p.weight[p.classes[ci]]
		if best[ci] >= 0 && w > 0 {
			if cost := float64(eligible[best[ci]].Size); p.deficit[ci] >= cost {
				p.deficit[ci] -= cost
				return best[ci]
			}
		} else {
			// Nothing eligible (or best-effort only): idle classes do not
			// bank credit across rounds.
			p.deficit[ci] = 0
		}
		p.cursor = (p.cursor + 1) % len(p.classes)
		p.deficit[p.cursor] += p.quantum * p.weight[p.classes[p.cursor]]
	}
}
