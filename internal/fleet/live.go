package fleet

import (
	"fmt"
	"math"

	"repro/internal/trace"
)

// Event is one resolved request of a live fleet session: a served (or split)
// completion, or a shed decision. Events surface incrementally from
// Live.Admit / Live.Advance / Live.Close, in resolution order, so a
// wall-clock front door can answer each request the moment the shared-pool
// engine resolves it instead of waiting for the whole session's Report.
type Event struct {
	// ID is the admission id (the order the request entered Admit).
	ID int
	// Outcome resolves the request.
	Outcome Outcome
	// Generation is the model-local schedule-set generation the request was
	// admitted on.
	Generation int
	// Sojourn is end-to-end latency in simulated seconds (NaN for sheds).
	Sojourn float64
	// Dispatch is the simulated time service started (NaN for sheds; for a
	// split request, its first chunk's start).
	Dispatch float64
	// Service is the resolved service time (NaN for sheds; summed chunk
	// service for a split).
	Service float64
	// Worker is the simulated GPU that served the request (-1 for sheds; the
	// last-dispatched chunk's worker for a split).
	Worker int
	// End is the simulated time the outcome was decided: completion time for
	// served/split requests, the shed decision time otherwise.
	End float64
}

// Live is one incremental session over a Pool: the same admission, dispatch,
// rebalancing, drift-control and split-at-cap machinery as Pool.Serve, but
// driven one arrival at a time. Pool.Serve is implemented on top of it —
// Begin, Admit every request in arrival order, Close — which is exactly what
// makes a recorded live session replay bit-identically offline: the batch
// replay and the live session execute the same code in the same event order.
//
// A Live is not safe for concurrent use; callers (the gateway front door)
// serialize access. Arrivals must be admitted in non-decreasing simulated
// time. Engine failures (a misbehaving policy, a negative service time) are
// sticky: the session aborts its supervisors and every later call returns
// the error. Returned event slices are valid until the next Live call.
type Live struct {
	p   *Pool
	st  *poolRun
	lcs []*trace.LoopControl
	occ []*modelOccupier

	reqs []Request // admitted arrivals, admission order

	// Per-admission results, admission order.
	sojourn  []float64
	dispatch []float64
	service  []float64
	worker   []int
	outcome  []Outcome
	gens     []int

	queue   []qentry // whole admissions awaiting dispatch, admission order
	chunks  []qentry // split chunks awaiting dispatch, FIFO
	splits  map[int]*fleetSplit
	eligIdx []int // dispatch-candidate scratch, reused across events

	queuedByTenant []int
	queuedByModel  []int
	splitsByModel  []int // in-flight splits per model (split creation to last chunk)
	workByModel    []float64
	modelSojourns  [][]float64
	tenantSojourns [][]float64

	// Elastic-pool state: drain marks workers the autoscaler removed from
	// every placement row (they finish in-flight work, then sit retired);
	// lives records each worker's add/retire times.
	drain []bool
	lives []WorkerLife

	met       *Metrics
	lastEnd   float64
	lastReb   float64
	lastScale float64
	started   bool
	first     float64

	events []Event
	err    error
	done   bool
}

// Begin opens an incremental session: per-model drift control is armed
// (supervised models hold their run locks until Close or Abort), the
// admission policy is reset, and the pool's initial placement applies. Every
// Begin must be balanced by exactly one Close (success) or Abort (error or
// abandonment).
func (p *Pool) Begin() *Live {
	k := p.cfg.Queue.EffectiveWorkers()
	class := make([]int, k)
	copy(class, p.cfg.WorkerClasses)
	l := &Live{
		p: p,
		st: &poolRun{
			p:           p,
			asg:         p.initial.clone(),
			free:        make([]float64, k),
			busy:        make([]float64, k),
			tune:        make([]float64, k),
			served:      make([]int, k),
			class:       class,
			tuneByModel: make([]float64, len(p.models)),
		},
		lcs:            make([]*trace.LoopControl, len(p.models)),
		occ:            make([]*modelOccupier, len(p.models)),
		splits:         make(map[int]*fleetSplit),
		queuedByTenant: make([]int, len(p.tenants)),
		queuedByModel:  make([]int, len(p.models)),
		splitsByModel:  make([]int, len(p.models)),
		workByModel:    make([]float64, len(p.models)),
		modelSojourns:  make([][]float64, len(p.models)),
		tenantSojourns: make([][]float64, len(p.tenants)),
		drain:          make([]bool, k),
		lives:          make([]WorkerLife, k),
	}
	for w := 0; w < k; w++ {
		l.lives[w] = WorkerLife{Worker: w, Class: class[w], RetiredAt: math.NaN()}
	}
	for m := range p.models {
		if p.models[m].Supervisor != nil {
			l.lcs[m] = p.models[m].Supervisor.BeginRun()
		}
		l.occ[m] = &modelOccupier{run: l.st, model: m}
	}

	// A stateful dispatch policy (e.g. WeightedFair's deficit counters)
	// starts every session from the same state, so a reused Pool stays
	// deterministic across sessions. The embedding-cache tier resets the
	// same way: replaying a recorded session through a pool that already
	// served it live must re-warm the cache from the identical cold start.
	if r, ok := p.policy.(interface{ Reset() }); ok {
		r.Reset()
	}
	if p.cfg.Cache != nil {
		p.cfg.Cache.Reset()
	}

	met := &Metrics{
		Latency:   p.cfg.histogram(),
		Policy:    p.policy.Name(),
		Placement: p.cfg.Placement.String(),
		Models:    make([]GroupMetrics, len(p.models)),
		Tenants:   make([]GroupMetrics, len(p.tenants)),
	}
	for m := range met.Models {
		met.Models[m].Name = p.models[m].Name
		met.Models[m].Latency = p.cfg.histogram()
	}
	for t := range met.Tenants {
		met.Tenants[t].Name = p.tenants[t].Name
		met.Tenants[t].Latency = p.cfg.histogram()
	}
	l.met = met
	return l
}

// fail records a fatal engine error and aborts the session's supervisors.
func (l *Live) fail(err error) error {
	l.err = err
	if !l.done {
		l.done = true
		for _, lc := range l.lcs {
			if lc != nil {
				lc.Abort()
			}
		}
	}
	return err
}

// Abort ends the session without a Report, releasing the supervisors' run
// locks. Safe to call after a failure or a successful Close (no-op then).
func (l *Live) Abort() {
	if l.done {
		return
	}
	l.done = true
	for _, lc := range l.lcs {
		if lc != nil {
			lc.Abort()
		}
	}
}

// Admitted returns the number of requests admitted so far (including sheds).
func (l *Live) Admitted() int { return len(l.reqs) }

// Err returns the sticky engine error, nil while the session is healthy.
// Validation rejections from Admit are not sticky and never show up here.
func (l *Live) Err() error { return l.err }

// Pending returns the number of admitted requests not yet resolved: whole
// requests still queued plus split requests with chunks in flight.
func (l *Live) Pending() int {
	return len(l.queue) + len(l.splits)
}

// validateRequest mirrors Pool.Serve's per-request validation with the same
// messages; i is the admission position used in them.
func (p *Pool) validateRequest(i int, r Request) error {
	switch {
	case r.Model < 0 || r.Model >= len(p.models):
		return fmt.Errorf("fleet: request %d targets unknown model %d (have %d)", i, r.Model, len(p.models))
	case r.Tenant < 0 || r.Tenant >= len(p.tenants):
		return fmt.Errorf("fleet: request %d belongs to unknown tenant %d (have %d)", i, r.Tenant, len(p.tenants))
	case r.Size <= 0:
		return fmt.Errorf("fleet: request %d has non-positive size %d", i, r.Size)
	case r.Deadline < 0:
		return fmt.Errorf("fleet: request %d has negative deadline %g", i, r.Deadline)
	}
	return nil
}

// Admit presents one arrival to the engine at its simulated arrival time and
// returns its admission id plus any events resolved while advancing to that
// time (completions of earlier requests, and possibly the shed of this one).
// Validation failures (unknown model/tenant, non-positive size, regressing
// arrival time) reject the request without poisoning the session; engine
// failures are sticky.
func (l *Live) Admit(r Request) (int, []Event, error) {
	if l.err != nil {
		return 0, nil, l.err
	}
	if l.done {
		return 0, nil, fmt.Errorf("fleet: session is closed")
	}
	pos := len(l.reqs)
	if err := l.p.validateRequest(pos, r); err != nil {
		return 0, nil, err
	}
	if math.IsNaN(r.Arrival) || math.IsInf(r.Arrival, 0) {
		return 0, nil, fmt.Errorf("fleet: request %d has non-finite arrival %g", pos, r.Arrival)
	}
	if l.started && r.Arrival < l.reqs[pos-1].Arrival {
		return 0, nil, fmt.Errorf("fleet: request %d arrives at t=%g before request %d at t=%g (live admissions must be in arrival order)",
			pos, r.Arrival, pos-1, l.reqs[pos-1].Arrival)
	}
	if !l.started {
		l.started = true
		l.first = r.Arrival
		l.lastReb = r.Arrival
		l.lastScale = r.Arrival
		for w := range l.lives {
			l.lives[w].AddedAt = r.Arrival
		}
	}

	l.events = l.events[:0]
	now := r.Arrival
	if err := l.advanceUntil(now); err != nil {
		return 0, nil, l.fail(err)
	}

	// Load-aware rebalancing and autoscaling hooks, paced by virtual time
	// (mutually exclusive by config validation).
	if _, err := l.maybeRebalance(now); err != nil {
		return 0, nil, l.fail(err)
	}
	if _, err := l.maybeAutoscale(now); err != nil {
		return 0, nil, l.fail(err)
	}

	// The model's drift control observes every arrival — before any queue
	// placement or shedding, exactly like the single-model engine — and
	// stamps the generation the request is admitted on.
	gen := 0
	if lc := l.lcs[r.Model]; lc != nil {
		g, err := lc.Admit(l.occ[r.Model], r.Size, now)
		if err != nil {
			return 0, nil, l.fail(err)
		}
		gen = g
	}

	l.reqs = append(l.reqs, r)
	l.sojourn = append(l.sojourn, math.NaN())
	l.dispatch = append(l.dispatch, math.NaN())
	l.service = append(l.service, math.NaN())
	l.worker = append(l.worker, -1)
	l.outcome = append(l.outcome, OutcomeServed)
	l.gens = append(l.gens, gen)

	qr := QueuedRequest{
		ID:       pos,
		Arrival:  now,
		Deadline: l.p.deadlineOf(r),
		Size:     r.Size,
		Model:    r.Model,
		Tenant:   r.Tenant,
		Priority: l.p.tenants[r.Tenant].Priority,
	}
	load := PoolLoad{
		Now:            now,
		Queued:         len(l.queue) + len(l.chunks),
		QueueDepth:     l.p.cfg.Queue.QueueDepth,
		QueuedByTenant: append([]int(nil), l.queuedByTenant...),
	}
	ok, out := l.p.policy.Admit(qr, load)
	if !ok {
		if !out.Shed() {
			return 0, nil, l.fail(fmt.Errorf("fleet: policy %s rejected a request with non-shed outcome %v", l.p.policy.Name(), out))
		}
		l.shed(pos, out, r.Model, r.Tenant, now)
		return pos, l.events, nil
	}
	l.queue = append(l.queue, qentry{
		id:       pos,
		arrival:  now,
		deadline: qr.Deadline,
		size:     r.Size,
		model:    r.Model,
		tenant:   r.Tenant,
		prio:     qr.Priority,
		gen:      gen,
	})
	l.queuedByTenant[r.Tenant]++
	l.queuedByModel[r.Model]++
	l.observeDepth()
	if l.queuedByTenant[r.Tenant] > l.met.Tenants[r.Tenant].MaxQueued {
		l.met.Tenants[r.Tenant].MaxQueued = l.queuedByTenant[r.Tenant]
	}
	if l.queuedByModel[r.Model] > l.met.Models[r.Model].MaxQueued {
		l.met.Models[r.Model].MaxQueued = l.queuedByModel[r.Model]
	}
	return pos, l.events, nil
}

// Advance processes every dispatch event up to simulated time now and returns
// the resolved events. Arrivals later than now must not have been admitted
// yet; the front door guarantees this by stamping arrivals with a monotone
// simulated clock.
func (l *Live) Advance(now float64) ([]Event, error) {
	if l.err != nil {
		return nil, l.err
	}
	if l.done {
		return nil, fmt.Errorf("fleet: session is closed")
	}
	l.events = l.events[:0]
	if err := l.advanceUntil(now); err != nil {
		return nil, l.fail(err)
	}
	return l.events, nil
}

// NextEventTime returns the simulated time of the earliest pending dispatch,
// or +Inf when nothing is queued — the front door's timer target.
func (l *Live) NextEventTime() float64 {
	if l.err != nil || l.done {
		return math.Inf(1)
	}
	_, tDisp := l.nextDispatch()
	return tDisp
}

// Close drains every queued request, finalizes the session and returns its
// Report (per-request slices in admission order) together with the events
// resolved by the final drain.
func (l *Live) Close() (*Report, []Event, error) {
	return l.closeWith(l.reqs, nil)
}

// closeWith drains and finalizes; reqs and order map admission positions back
// to the caller's request indices (Pool.Serve's sorted view — nil order means
// admission order is the caller's order).
func (l *Live) closeWith(reqs []Request, order []int) (*Report, []Event, error) {
	if l.err != nil {
		return nil, nil, l.err
	}
	if l.done {
		return nil, nil, fmt.Errorf("fleet: session is closed")
	}
	l.events = l.events[:0]
	if err := l.advanceUntil(math.Inf(1)); err != nil {
		return nil, nil, l.fail(err)
	}
	l.done = true

	n := len(l.reqs)
	met := l.met
	rep := &Report{
		Sojourn:     make([]float64, n),
		Outcomes:    make([]Outcome, n),
		Generations: make([]int, n),
		Dispatch:    make([]float64, n),
		Worker:      make([]int, n),
		Service:     make([]float64, n),
		Metrics:     met,
	}
	for pos := 0; pos < n; pos++ {
		idx := originalIndex(order, pos)
		rep.Sojourn[idx] = l.sojourn[pos]
		rep.Outcomes[idx] = l.outcome[pos]
		rep.Generations[idx] = l.gens[pos]
		rep.Dispatch[idx] = l.dispatch[pos]
		rep.Worker[idx] = l.worker[pos]
		rep.Service[idx] = l.service[pos]
	}

	// Pool-wide aggregates. The worker set may have grown past the configured
	// count under autoscaling, so size by the live state, not the config.
	k := len(l.st.free)
	if n > 0 {
		met.Makespan = l.lastEnd - l.first
		if met.Makespan < 0 {
			met.Makespan = 0
		}
	}
	met.Workers = make([]trace.WorkerStats, k)
	for w := 0; w < k; w++ {
		met.Workers[w] = trace.WorkerStats{
			Served:   l.st.served[w],
			Busy:     l.st.busy[w],
			TuneBusy: l.st.tune[w],
		}
		if met.Makespan > 0 {
			met.Workers[w].Utilization = (l.st.busy[w] + l.st.tune[w]) / met.Makespan
		}
	}
	if l.p.cfg.Autoscale != nil {
		met.WorkerLives = append([]WorkerLife(nil), l.lives...)
	}
	for m := range met.Models {
		groupStats(&met.Models[m], l.modelSojourns[m])
	}
	for t := range met.Tenants {
		groupStats(&met.Tenants[t], l.tenantSojourns[t])
	}
	if c := l.p.cfg.Cache; c != nil {
		met.Cache = c.Snapshot()
		for m := range met.Cache.Models {
			met.Cache.Models[m].Name = l.p.models[m].Name
		}
		for t := range met.Cache.Tenants {
			met.Cache.Tenants[t].Name = l.p.tenants[t].Name
		}
	}

	// Per-model single-model reports; supervised models finalize their
	// drift control into them (swap history, generation count, rollbacks)
	// and publish their metrics snapshots.
	rep.ModelReports = make([]*trace.Report, len(l.p.models))
	for m := range l.p.models {
		rep.ModelReports[m] = l.p.modelReport(m, reqs, rep, l.st.tuneByModel[m])
		if l.lcs[m] != nil {
			l.lcs[m].Finalize(rep.ModelReports[m])
		}
	}
	return rep, l.events, nil
}

// observeDepth tracks peak shared-buffer occupancy (whole admissions plus
// queued split chunks) at the same points the single-model engine samples
// it: after an admission enters the queue and after a dispatch removes an
// entry — the latter is how a post-split peak (one removal, several chunk
// insertions) becomes visible.
func (l *Live) observeDepth() {
	if d := len(l.queue) + len(l.chunks); d > l.met.MaxQueueDepth {
		l.met.MaxQueueDepth = d
	}
}

// recordSnapshot appends one load observation to the history the rebalance
// and autoscale hooks consume. The per-model count is maintained
// incrementally — whole queued admissions plus in-flight splits, each split
// counting exactly once until its last chunk lands — so recording is
// O(models × placed workers), never a scan of the queue, and the snapshot's
// total always equals Pending().
func (l *Live) recordSnapshot(now float64) {
	kw := len(l.st.free)
	qbm := make([]int, len(l.queuedByModel))
	for m := range qbm {
		qbm[m] = l.queuedByModel[m] + l.splitsByModel[m]
	}
	load := make([]WorkerLoad, kw)
	for w := 0; w < kw; w++ {
		load[w] = WorkerLoad{Busy: l.st.busy[w], TuneBusy: l.st.tune[w], FreeAt: l.st.free[w], Class: l.st.class[w]}
	}
	for m := range l.st.asg {
		for _, w := range l.st.asg[m] {
			load[w].Queued += qbm[m]
		}
	}
	l.met.LoadHistory = append(l.met.LoadHistory, LoadSnapshot{
		Time:          now,
		Workers:       load,
		QueuedByModel: qbm,
		WorkByModel:   append([]float64(nil), l.workByModel...),
	})
}

// maybeRebalance evaluates the rebalance hook at its virtual-time pacing. It
// runs on both arrival and dispatch events — dispatch events keep it alive
// while the queue drains after the last arrival and across arrival-free
// windows — and records a load snapshot into the history the hook consumes.
// Returns whether a new assignment was applied.
func (l *Live) maybeRebalance(now float64) (bool, error) {
	p := l.p
	if p.cfg.Rebalance == nil || p.cfg.RebalanceEvery <= 0 || now < l.lastReb+p.cfg.RebalanceEvery {
		return false, nil
	}
	l.lastReb = now
	l.recordSnapshot(now)
	na := p.cfg.Rebalance(now, l.met.LoadHistory, l.st.asg.clone())
	if na == nil {
		return false, nil
	}
	if err := na.validate(len(p.models), len(l.st.free)); err != nil {
		return false, fmt.Errorf("fleet: rebalance at t=%g: %w", now, err)
	}
	if p.reserved > 0 {
		if err := validateReserves(na, p.reserves); err != nil {
			return false, fmt.Errorf("fleet: rebalance at t=%g: %w", now, err)
		}
	}
	l.st.asg = na.clone()
	l.met.Rebalances++
	if p.cfg.Preempt {
		l.preemptQueuedChunks(now)
	}
	return true, nil
}

// preemptQueuedChunks requeues every already-arrived split chunk at now: an
// applied rebalance or a scale-in moved placement out from under pending
// chunks, so their queued dispatches restart under the new shape. Each
// requeue emits an informational OutcomePreempted event and bumps
// Metrics.Preemptions; sojourn accounting is unaffected because a split's
// sojourn runs from its parent's original arrival (fleetSplit.arrival), not
// the chunks' requeued arrivals.
func (l *Live) preemptQueuedChunks(now float64) {
	for i := range l.chunks {
		c := &l.chunks[i]
		if c.arrival >= now {
			continue
		}
		c.arrival = now
		l.met.Preemptions++
		l.events = append(l.events, Event{
			ID: c.id, Outcome: OutcomePreempted, Generation: c.gen,
			Sojourn: math.NaN(), Dispatch: math.NaN(), Service: math.NaN(),
			Worker: -1, End: now,
		})
	}
}

// shed resolves one request as dropped, bumping the cause counters and
// emitting its event.
func (l *Live) shed(pos int, out Outcome, model, tenant int, now float64) {
	l.outcome[pos] = out
	met := l.met
	bump := func(g *GroupMetrics) {
		switch out {
		case OutcomeShedQueue:
			g.ShedQueue++
		case OutcomeShedQuota:
			g.ShedQuota++
		case OutcomeShedLoad:
			g.ShedLoad++
		case OutcomeShedDeadline:
			g.ShedDeadline++
		}
	}
	bump(&met.Models[model])
	bump(&met.Tenants[tenant])
	switch out {
	case OutcomeShedQueue:
		met.ShedQueue++
	case OutcomeShedQuota:
		met.ShedQuota++
	case OutcomeShedLoad:
		met.ShedLoad++
	case OutcomeShedDeadline:
		met.ShedDeadline++
	}
	l.events = append(l.events, Event{
		ID: pos, Outcome: out, Generation: l.gens[pos],
		Sojourn: math.NaN(), Dispatch: math.NaN(), Service: math.NaN(),
		Worker: -1, End: now,
	})
}

// nextDispatch computes the earliest possible dispatch: for each worker, the
// earliest queued request or split chunk placed on it (by arrival) bounds the
// worker's next start. Ties between workers resolve by the placement
// strategy. Returns (-1, +Inf) when nothing is queued.
func (l *Live) nextDispatch() (int, float64) {
	// Size by the live worker set: autoscaling grows it past the configured
	// count. Drained workers need no special case — they leave every
	// placement row, so nothing is placed on them.
	k := len(l.st.free)
	bestW := -1
	tDisp := math.Inf(1)
	for w := 0; w < k; w++ {
		minArr := math.Inf(1)
		for i := range l.queue {
			if !placedOn(l.st.asg, l.queue[i].model, w) {
				continue
			}
			if l.queue[i].arrival < minArr {
				minArr = l.queue[i].arrival
			}
		}
		for i := range l.chunks {
			if !placedOn(l.st.asg, l.chunks[i].model, w) {
				continue
			}
			if l.chunks[i].arrival < minArr {
				minArr = l.chunks[i].arrival
			}
		}
		if math.IsInf(minArr, 1) {
			continue
		}
		t := math.Max(l.st.free[w], minArr)
		if t < tDisp || (t == tDisp && l.st.betterWorker(w, bestW)) {
			bestW, tDisp = w, t
		}
	}
	return bestW, tDisp
}

// advanceUntil processes every dispatch event with dispatch time <= bound.
// Ties with an arrival dispatch first — the caller admits the arrival only
// after advancing to its time — so a slot freed at time t is visible to an
// arrival at time t, matching the single-model engine.
func (l *Live) advanceUntil(bound float64) error {
	for {
		bestW, tDisp := l.nextDispatch()
		if bestW == -1 || tDisp > bound {
			return nil
		}
		// The rebalance pacing is evaluated at dispatch events too —
		// otherwise the hook would fall silent the moment arrivals stop
		// (drain phase) or thin out. An applied rebalance invalidates the
		// candidate computation above, so recompute the event under the new
		// assignment; lastReb has advanced, so this cannot loop.
		if changed, err := l.maybeRebalance(tDisp); err != nil {
			return err
		} else if changed {
			continue
		}
		// Same rule for the autoscaler: a scale decision reshapes the worker
		// set, so the candidate must be recomputed; lastScale has advanced,
		// so this cannot loop either.
		if changed, err := l.maybeAutoscale(tDisp); err != nil {
			return err
		} else if changed {
			continue
		}
		if err := l.dispatchAt(bestW, tDisp); err != nil {
			return err
		}
	}
}

// dispatchAt executes one dispatch event on worker bestW at time tDisp:
// split chunks placed on the worker go first, then the admission policy
// picks among the queued requests that have arrived.
func (l *Live) dispatchAt(bestW int, tDisp float64) error {
	p := l.p
	met := l.met

	// Split chunks placed on this worker dispatch ahead of any policy
	// pick — a split request was already chosen by the policy once, and
	// finishing it promptly is the point of splitting (the single-model
	// engine expresses the same rule by inserting chunks at the queue
	// front). Chunks dispatch in split order.
	ci := -1
	for i := range l.chunks {
		if l.chunks[i].arrival <= tDisp && placedOn(l.st.asg, l.chunks[i].model, bestW) {
			ci = i
			break
		}
	}
	if ci >= 0 && p.cfg.Preempt && l.hasUrgentWhole(bestW, tDisp, l.chunks[ci].prio) {
		// Chunk-boundary preemption: a strictly higher-priority whole request
		// is waiting for this worker, so the head chunk yields the slot — its
		// arrival moves to now (the requeue) and the policy picks instead.
		// The split's sojourn clock (fleetSplit.arrival) does not move.
		c := &l.chunks[ci]
		c.arrival = tDisp
		met.Preemptions++
		l.events = append(l.events, Event{
			ID: c.id, Outcome: OutcomePreempted, Generation: c.gen,
			Sojourn: math.NaN(), Dispatch: math.NaN(), Service: math.NaN(),
			Worker: -1, End: tDisp,
		})
		ci = -1
	}
	if ci >= 0 {
		e := l.chunks[ci]
		l.chunks = append(l.chunks[:ci], l.chunks[ci+1:]...)
		l.observeDepth()

		sv, err := l.resolveAt(e, tDisp, bestW)
		if err != nil {
			return err
		}

		end := tDisp + sv
		l.st.free[bestW] = end
		l.st.busy[bestW] += sv
		l.st.served[bestW]++
		l.workByModel[e.model] += sv
		sp := l.splits[e.id]
		sp.remaining--
		sp.service += sv
		sp.worker = bestW
		if math.IsNaN(sp.firstDisp) {
			sp.firstDisp = tDisp
		}
		if end > sp.end {
			sp.end = end
		}
		if sp.remaining == 0 {
			soj := sp.end - sp.arrival
			l.sojourn[e.id] = soj
			l.outcome[e.id] = OutcomeSplit
			l.dispatch[e.id] = sp.firstDisp
			l.worker[e.id] = sp.worker
			l.service[e.id] = sp.service
			met.Served++
			met.SplitServed++
			met.Latency.Observe(soj)
			mm, tt := &met.Models[e.model], &met.Tenants[e.tenant]
			mm.Served++
			mm.SplitServed++
			mm.Latency.Observe(soj)
			tt.Served++
			tt.SplitServed++
			tt.Latency.Observe(soj)
			l.modelSojourns[e.model] = append(l.modelSojourns[e.model], soj)
			l.tenantSojourns[e.tenant] = append(l.tenantSojourns[e.tenant], soj)
			if sp.end > e.deadline {
				met.Timeouts++
				mm.Timeouts++
				tt.Timeouts++
			}
			if sp.end > l.lastEnd {
				l.lastEnd = sp.end
			}
			if l.lcs[e.model] != nil {
				l.lcs[e.model].Observe(sp.size, e.gen, sp.end, soj)
			}
			l.events = append(l.events, Event{
				ID: e.id, Outcome: OutcomeSplit, Generation: e.gen,
				Sojourn: soj, Dispatch: sp.firstDisp, Service: sp.service,
				Worker: sp.worker, End: sp.end,
			})
			l.splitsByModel[e.model]--
			delete(l.splits, e.id)
		}
		return nil
	}

	// Dispatch on bestW at tDisp: the policy picks among the queued
	// requests that are placed on this worker and have arrived.
	l.eligIdx = l.eligIdx[:0]
	for i := range l.queue {
		if l.queue[i].arrival <= tDisp && placedOn(l.st.asg, l.queue[i].model, bestW) {
			l.eligIdx = append(l.eligIdx, i)
		}
	}
	elig := make([]QueuedRequest, len(l.eligIdx))
	for j, i := range l.eligIdx {
		e := &l.queue[i]
		elig[j] = QueuedRequest{
			ID: e.id, Arrival: e.arrival, Deadline: e.deadline,
			Size: e.size, Model: e.model, Tenant: e.tenant, Priority: e.prio,
		}
	}
	pick := p.policy.Next(elig, tDisp)
	if pick < 0 || pick >= len(elig) {
		return fmt.Errorf("fleet: policy %s picked out-of-range candidate %d of %d", p.policy.Name(), pick, len(elig))
	}
	qi := l.eligIdx[pick]
	e := l.queue[qi]
	l.queue = append(l.queue[:qi], l.queue[qi+1:]...)
	l.queuedByTenant[e.tenant]--
	l.queuedByModel[e.model]--
	l.observeDepth()

	sv, err := l.resolveAt(e, tDisp, bestW)
	if err != nil {
		return err
	}

	switch {
	case p.cfg.Queue.Policy == trace.DegradeShed && tDisp+sv > e.deadline:
		l.shed(e.id, OutcomeShedDeadline, e.model, e.tenant, tDisp)
		return nil
	case p.cfg.Queue.Policy == trace.DegradeSplitTail && p.cfg.Queue.IsTail(e.size) && tDisp > e.deadline:
		// The tail request cannot even start before its deadline.
		l.shed(e.id, OutcomeShedDeadline, e.model, e.tenant, tDisp)
		return nil
	case p.cfg.Queue.Policy == trace.DegradeSplitTail && p.cfg.Queue.IsTail(e.size) && tDisp+sv > e.deadline:
		// Split-at-cap fallback, same semantics as the single-model
		// engine: the tail request re-enters dispatch as capped chunks
		// that route independently (chunks of one request can run on
		// several workers at once) and dispatch ahead of policy picks.
		// Chunks inherit the parent's generation: a split request is
		// still one admission and finishes on the schedule set it
		// arrived under.
		cs := p.cfg.Queue.ChunkSizes(e.size)
		l.splits[e.id] = &fleetSplit{remaining: len(cs), size: e.size, arrival: e.arrival, firstDisp: math.NaN()}
		l.splitsByModel[e.model]++
		for _, c := range cs {
			// Chunks carry the parent's priority so the preemption gate can
			// compare them against waiting whole requests.
			l.chunks = append(l.chunks, qentry{
				id: e.id, arrival: e.arrival, deadline: e.deadline,
				size: c, model: e.model, tenant: e.tenant, prio: e.prio, gen: e.gen,
			})
		}
		return nil
	}

	end := tDisp + sv
	l.st.free[bestW] = end
	l.st.busy[bestW] += sv
	l.st.served[bestW]++
	l.workByModel[e.model] += sv
	if end > l.lastEnd {
		l.lastEnd = end
	}
	soj := end - e.arrival
	l.sojourn[e.id] = soj
	l.outcome[e.id] = OutcomeServed
	l.dispatch[e.id] = tDisp
	l.worker[e.id] = bestW
	l.service[e.id] = sv
	met.Served++
	met.Latency.Observe(soj)
	met.Models[e.model].Served++
	met.Models[e.model].Latency.Observe(soj)
	met.Tenants[e.tenant].Served++
	met.Tenants[e.tenant].Latency.Observe(soj)
	l.modelSojourns[e.model] = append(l.modelSojourns[e.model], soj)
	l.tenantSojourns[e.tenant] = append(l.tenantSojourns[e.tenant], soj)
	if end > e.deadline {
		met.Timeouts++
		met.Models[e.model].Timeouts++
		met.Tenants[e.tenant].Timeouts++
	}
	if l.lcs[e.model] != nil {
		l.lcs[e.model].Observe(e.size, e.gen, end, soj)
	}
	l.events = append(l.events, Event{
		ID: e.id, Outcome: OutcomeServed, Generation: e.gen,
		Sojourn: soj, Dispatch: tDisp, Service: sv,
		Worker: bestW, End: end,
	})
	return nil
}

// hasUrgentWhole reports whether a whole queued request with strictly higher
// priority than prio has arrived and is placed on worker w — the condition
// under which a waiting split chunk yields its dispatch slot (Config.Preempt).
func (l *Live) hasUrgentWhole(w int, tDisp float64, prio int) bool {
	for i := range l.queue {
		if l.queue[i].prio > prio && l.queue[i].arrival <= tDisp && placedOn(l.st.asg, l.queue[i].model, w) {
			return true
		}
	}
	return false
}

// resolveAt resolves one dispatch's service time on worker w and, when the
// pool serves through an embedding-cache tier, charges the batch's cold
// traffic on top. This is the tier's single mutation point: every dispatch
// event — whole request or split chunk, batch replay or live gateway — passes
// through here in the same order, so cache state evolution is part of the
// deterministic replay contract. The device-class multiplier applies to the
// kernel time only — the cache penalty models PCIe fetches, which the class
// of the compute die does not change — and lands before the degradation
// policy's deadline check: a cold burst can push a request over its deadline
// exactly like a slow kernel can.
func (l *Live) resolveAt(e qentry, tDisp float64, w int) (float64, error) {
	sv, err := l.resolve(e)
	if err != nil {
		return 0, err
	}
	if s := l.p.classScale(e.model, l.st.class[w]); s != 1 {
		sv *= s
	}
	if c := l.p.cfg.Cache; c != nil {
		sv += c.Dispatch(e.model, e.tenant, tDisp, e.size)
	}
	return sv, nil
}

// resolve returns one queue entry's service time under its admission
// generation (supervised models) or the model's fixed service.
func (l *Live) resolve(e qentry) (float64, error) {
	var sv float64
	var err error
	if l.lcs[e.model] != nil {
		sv, err = l.lcs[e.model].Resolve(e.gen, e.arrival, e.size)
	} else {
		sv, err = l.p.models[e.model].Service(e.arrival, e.size)
	}
	if err == nil && sv < 0 {
		err = fmt.Errorf("fleet: negative service time %g for size %d", sv, e.size)
	}
	if err != nil {
		return 0, fmt.Errorf("fleet: model %s: %w", l.p.models[e.model].Name, err)
	}
	return sv, nil
}
