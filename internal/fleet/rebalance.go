package fleet

// RebalanceByLoadConfig shapes the built-in history-driven rebalancer.
type RebalanceByLoadConfig struct {
	// Window is how many of the most recent load snapshots the demand
	// estimate averages over; 0 means the whole recorded history.
	Window int
}

// NewRebalanceByLoad returns the built-in history-driven RebalanceFunc. At
// each pacing interval it estimates every model's demand over the recent
// LoadSnapshot window — the served work the model received plus its mean
// queue backlog, each normalized so a starved model (all backlog, no work)
// still registers — and re-partitions the pool into contiguous per-model
// worker blocks proportional to demand, at least one worker per model. The
// partition trades the shared pool's statistical multiplexing for isolation
// that tracks load: a model whose backlog grows takes workers from models
// that stopped using theirs, without any instantaneous-snapshot flapping.
//
// The hook returns nil (keep the current assignment) when the pool has fewer
// workers than models, when no demand signal exists yet, or when the
// proportional partition equals the current assignment. It is deterministic:
// the same history always yields the same partition.
func NewRebalanceByLoad(cfg RebalanceByLoadConfig) RebalanceFunc {
	return func(now float64, hist []LoadSnapshot, cur Assignment) Assignment {
		if len(hist) == 0 {
			return nil
		}
		win := hist
		if cfg.Window > 0 && len(win) > cfg.Window {
			win = win[len(win)-cfg.Window:]
		}
		models := len(cur)
		first, last := win[0], win[len(win)-1]
		if len(last.QueuedByModel) != models || len(last.WorkByModel) != models {
			return nil
		}
		workers := len(last.Workers)
		if workers < models {
			return nil
		}

		// Demand per model: work received over the window plus mean backlog,
		// each converted to a share of its own total so the two signals weigh
		// equally and a backlogged-but-starved model is still visible.
		workDelta := make([]float64, models)
		backlog := make([]float64, models)
		var workTot, backTot float64
		for m := 0; m < models; m++ {
			workDelta[m] = last.WorkByModel[m] - first.WorkByModel[m]
			if workDelta[m] < 0 {
				workDelta[m] = 0
			}
			for _, s := range win {
				backlog[m] += float64(s.QueuedByModel[m])
			}
			backlog[m] /= float64(len(win))
			workTot += workDelta[m]
			backTot += backlog[m]
		}
		share := make([]float64, models)
		var total float64
		for m := 0; m < models; m++ {
			if workTot > 0 {
				share[m] += workDelta[m] / workTot
			}
			if backTot > 0 {
				share[m] += backlog[m] / backTot
			}
			total += share[m]
		}
		if total == 0 {
			return nil
		}

		counts := apportionWorkers(share, total, workers)
		na := make(Assignment, models)
		next := 0
		for m := 0; m < models; m++ {
			row := make([]int, counts[m])
			for i := range row {
				row[i] = next
				next++
			}
			na[m] = row
		}
		if equalAssignment(na, cur) {
			return nil
		}
		return na
	}
}

// apportionWorkers splits k workers across demand shares by the largest-
// remainder method with a one-worker floor per model (k >= len(share) is the
// caller's precondition). Ties go to the lower model index, so the split is
// deterministic.
func apportionWorkers(share []float64, total float64, k int) []int {
	n := len(share)
	counts := make([]int, n)
	rem := make([]float64, n)
	used := 0
	for m := range share {
		exact := share[m] / total * float64(k)
		counts[m] = int(exact)
		rem[m] = exact - float64(counts[m])
		if counts[m] < 1 {
			counts[m] = 1
			rem[m] = 0
		}
		used += counts[m]
	}
	for used < k {
		best := -1
		for m := range rem {
			if best == -1 || rem[m] > rem[best] {
				best = m
			}
		}
		counts[best]++
		rem[best] = 0
		used++
	}
	for used > k {
		// One-worker floors overshot the pool; take back from the largest
		// block (lowest index on ties).
		big := 0
		for m := range counts {
			if counts[m] > counts[big] {
				big = m
			}
		}
		counts[big]--
		used--
	}
	return counts
}

// equalAssignment reports whether two assignments place every model on the
// same workers in the same order.
func equalAssignment(a, b Assignment) bool {
	if len(a) != len(b) {
		return false
	}
	for m := range a {
		if len(a[m]) != len(b[m]) {
			return false
		}
		for i := range a[m] {
			if a[m][i] != b[m][i] {
				return false
			}
		}
	}
	return true
}
