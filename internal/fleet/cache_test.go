package fleet_test

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/emcache"
	"repro/internal/fleet"
	"repro/internal/trace"
)

// cacheTestTier builds a two-model tier whose budget is far below the working
// set, so cache penalties actually appear in service times.
func cacheTestTier(t *testing.T, policy emcache.Policy) *emcache.Tier {
	t.Helper()
	tier, err := emcache.New(emcache.Config{
		BudgetBytes: 32 << 10,
		Policy:      policy,
		RetierEvery: 0.02,
		Models: []emcache.ModelProfile{
			emcache.Steady([]emcache.FeatureHeat{
				{Rows: 4096, RowBytes: 128, RowsPerSample: 4, Skew: 1.07},
				{Rows: 8192, RowBytes: 64, RowsPerSample: 1, Skew: 0},
			}),
			emcache.Steady([]emcache.FeatureHeat{
				{Rows: 2048, RowBytes: 256, RowsPerSample: 2, Skew: 1.07},
			}),
		},
		Tenants: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tier
}

func cacheTestPool(t *testing.T, tier *emcache.Tier) *fleet.Pool {
	t.Helper()
	svc := func(per float64) trace.TimedServiceFunc {
		return func(_ float64, size int) (float64, error) { return float64(size) * per, nil }
	}
	p, err := fleet.NewPool(fleet.Config{
		Queue: trace.QueuePolicy{Workers: 2, QueueDepth: 32},
		Cache: tier,
	}, []fleet.Model{
		{Name: "rank", Service: svc(2e-6)},
		{Name: "score", Service: svc(1e-6)},
	}, []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func cacheTestReqs() []fleet.Request {
	var reqs []fleet.Request
	for i := 0; i < 48; i++ {
		reqs = append(reqs, fleet.Request{
			Arrival: float64(i) * 4e-4,
			Size:    24 + i%3,
			Model:   i % 2,
			Tenant:  (i / 2) % 2,
		})
	}
	return reqs
}

// TestPoolCacheDeterminism pins the replay invariant the tier is built
// around: the same trace served twice on a reused pool (Begin resets the
// tier) and once on a second pool with an identically configured tier must
// agree bit-for-bit, cache counters included.
func TestPoolCacheDeterminism(t *testing.T) {
	for _, policy := range []emcache.Policy{emcache.PolicyStatic, emcache.PolicyLRU, emcache.PolicyClock} {
		reqs := cacheTestReqs()
		pool := cacheTestPool(t, cacheTestTier(t, policy))
		first, err := pool.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		second, err := pool.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		other, err := cacheTestPool(t, cacheTestTier(t, policy)).Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for _, run := range []*fleet.Report{second, other} {
			for i := range first.Sojourn {
				if math.Float64bits(first.Sojourn[i]) != math.Float64bits(run.Sojourn[i]) ||
					math.Float64bits(first.Service[i]) != math.Float64bits(run.Service[i]) {
					t.Fatalf("%v: request %d diverges: sojourn %v vs %v, service %v vs %v",
						policy, i, first.Sojourn[i], run.Sojourn[i], first.Service[i], run.Service[i])
				}
			}
			if !reflect.DeepEqual(first.Metrics.Cache, run.Metrics.Cache) {
				t.Fatalf("%v: cache snapshots diverge:\n%+v\n%+v", policy, first.Metrics.Cache, run.Metrics.Cache)
			}
		}
		if first.Metrics.Cache == nil || first.Metrics.Cache.Penalty <= 0 {
			t.Fatalf("%v: expected a populated cache snapshot with cold traffic, got %+v", policy, first.Metrics.Cache)
		}
	}
}

// TestPoolCacheInflatesService checks the recosting direction: with a tier
// whose budget is under the working set, every served request's resolved
// service time is at least what the cache-less pool resolves, and the total
// inflation equals the tier's charged penalty.
func TestPoolCacheInflatesService(t *testing.T) {
	reqs := cacheTestReqs()
	withCache, err := cacheTestPool(t, cacheTestTier(t, emcache.PolicyStatic)).Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	without, err := cacheTestPool(t, nil).Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	var inflation float64
	for i := range reqs {
		a, b := withCache.Service[i], without.Service[i]
		if math.IsNaN(a) || math.IsNaN(b) {
			continue // shed in one run; arrival pattern keeps both stable but don't assume
		}
		if a < b {
			t.Fatalf("request %d: cached service %g below cache-less %g", i, a, b)
		}
		inflation += a - b
	}
	snap := withCache.Metrics.Cache
	if snap == nil {
		t.Fatal("cache snapshot missing")
	}
	if math.Abs(inflation-snap.Penalty) > 1e-9*(1+snap.Penalty) {
		t.Fatalf("service inflation %g != charged penalty %g", inflation, snap.Penalty)
	}
	if without.Metrics.Cache != nil {
		t.Fatal("cache-less pool reported a cache snapshot")
	}
}

// TestPoolCacheMetricsNames checks the pool labels the snapshot's groups from
// its model and tenant lists and that per-group accounting adds up.
func TestPoolCacheMetricsNames(t *testing.T) {
	rep, err := cacheTestPool(t, cacheTestTier(t, emcache.PolicyLRU)).Serve(cacheTestReqs())
	if err != nil {
		t.Fatal(err)
	}
	snap := rep.Metrics.Cache
	if snap == nil {
		t.Fatal("cache snapshot missing")
	}
	if len(snap.Models) != 2 || snap.Models[0].Name != "rank" || snap.Models[1].Name != "score" {
		t.Fatalf("model names not filled: %+v", snap.Models)
	}
	if len(snap.Tenants) != 2 || snap.Tenants[0].Name != "interactive" || snap.Tenants[1].Name != "batch" {
		t.Fatalf("tenant names not filled: %+v", snap.Tenants)
	}
	var modelReads, tenantReads float64
	for _, g := range snap.Models {
		modelReads += g.RowReads
	}
	for _, g := range snap.Tenants {
		tenantReads += g.RowReads
	}
	if math.Abs(modelReads-snap.RowReads) > 1e-6 || math.Abs(tenantReads-snap.RowReads) > 1e-6 {
		t.Fatalf("group reads (%g model, %g tenant) don't sum to tier reads %g", modelReads, tenantReads, snap.RowReads)
	}
	if snap.Models[0].OccupiedBytes+snap.Models[1].OccupiedBytes != snap.OccupiedBytes {
		t.Fatalf("per-model occupancy %d+%d != tier occupancy %d",
			snap.Models[0].OccupiedBytes, snap.Models[1].OccupiedBytes, snap.OccupiedBytes)
	}
}

// TestPoolCacheValidation pins the config cross-checks: a tier built for the
// wrong model or tenant count must be rejected at pool construction.
func TestPoolCacheValidation(t *testing.T) {
	tier, err := emcache.New(emcache.Config{
		BudgetBytes: 1 << 20,
		Models: []emcache.ModelProfile{emcache.Steady([]emcache.FeatureHeat{
			{Rows: 64, RowBytes: 64, RowsPerSample: 1, Skew: 1.07},
		})},
		Tenants: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	svc := func(_ float64, size int) (float64, error) { return 1e-5, nil }
	models := []fleet.Model{{Name: "a", Service: svc}, {Name: "b", Service: svc}}
	tenants := []fleet.TenantSpec{{Name: "t0"}, {Name: "t1"}}
	cfg := fleet.Config{Queue: trace.QueuePolicy{Workers: 1}, Cache: tier}
	if _, err := fleet.NewPool(cfg, models, tenants); err == nil {
		t.Fatal("pool accepted a tier built for 1 model")
	}
	if _, err := fleet.NewPool(cfg, models[:1], tenants); err == nil {
		t.Fatal("pool accepted a tier built for 1 tenant")
	}
	if _, err := fleet.NewPool(cfg, models[:1], tenants[:1]); err != nil {
		t.Fatalf("matched tier rejected: %v", err)
	}
}
