package fleet

import (
	"fmt"
	"sort"
)

// Strategy selects how models are placed onto the pool's workers.
type Strategy int

const (
	// PlacementPacked places every model on every worker and consolidates
	// dispatch onto the lowest-indexed worker that can start a request
	// earliest — the bin-packing shape: light load concentrates on few
	// workers, which maximizes the idle capacity available to background
	// tunes (and, on real fleets, to power-gating).
	PlacementPacked Strategy = iota
	// PlacementSpread places every model on every worker and breaks dispatch
	// ties toward the worker with the least accumulated busy time — the
	// load-balancing shape: queueing interference between models is averaged
	// across the pool rather than concentrated.
	PlacementSpread
	// PlacementDedicated partitions the workers into contiguous disjoint
	// blocks, one per model (the remainder going to the earlier models), so
	// models never share a worker: the isolation shape, trading peak
	// capacity per model for zero cross-model interference.
	PlacementDedicated
)

func (s Strategy) String() string {
	switch s {
	case PlacementPacked:
		return "packed"
	case PlacementSpread:
		return "spread"
	case PlacementDedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a strategy's String form back to its value — the
// flag-parsing inverse used by recflex-serve's -placement flag.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "packed":
		return PlacementPacked, nil
	case "spread":
		return PlacementSpread, nil
	case "dedicated":
		return PlacementDedicated, nil
	}
	return 0, fmt.Errorf("fleet: unknown placement strategy %q (want packed, spread or dedicated)", s)
}

// Assignment maps each model to the sorted worker ids it may run on.
type Assignment [][]int

// clone returns a deep copy, so a rebalance hook can edit freely.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for m := range a {
		out[m] = append([]int(nil), a[m]...)
	}
	return out
}

// validate checks an assignment against the pool shape: every model holds at
// least one worker and every worker id is in range. (Workers left unassigned
// are legal — a rebalance may deliberately drain one.)
func (a Assignment) validate(models, workers int) error {
	if len(a) != models {
		return fmt.Errorf("fleet: assignment covers %d models, want %d", len(a), models)
	}
	for m := range a {
		if len(a[m]) == 0 {
			return fmt.Errorf("fleet: assignment leaves model %d with no workers", m)
		}
		for _, w := range a[m] {
			if w < 0 || w >= workers {
				return fmt.Errorf("fleet: assignment places model %d on worker %d (pool has %d)", m, w, workers)
			}
		}
	}
	return nil
}

// validateReserves checks that an assignment honors every model's exclusive
// worker floor: at least reserves[m] of model m's workers appear in no other
// model's row. A rebalance hook on a pool with reservations must keep these
// floors or the rebalance is rejected.
func validateReserves(a Assignment, reserves []int) error {
	if len(reserves) == 0 {
		return nil
	}
	owners := make(map[int]int) // worker -> number of models placed on it
	for m := range a {
		for _, w := range a[m] {
			owners[w]++
		}
	}
	for m, want := range reserves {
		if want == 0 {
			continue
		}
		got := 0
		for _, w := range a[m] {
			if owners[w] == 1 {
				got++
			}
		}
		if got < want {
			return fmt.Errorf("fleet: assignment gives model %d only %d exclusive workers, Reserve floor is %d", m, got, want)
		}
	}
	return nil
}

// assign builds the initial assignment for a strategy. reserves, when
// non-nil, holds each model's exclusive worker floor (Model.Reserve) for
// packed/spread placement: the lowest sum(reserves) worker ids are carved
// out as exclusive blocks in model order, and every model additionally gets
// the remaining shared workers. Dedicated placement ignores reserves (the
// caller rejects that combination).
func assign(s Strategy, models, workers int, reserves []int) (Assignment, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("fleet: need at least one worker, got %d", workers)
	}
	out := make(Assignment, models)
	switch s {
	case PlacementPacked, PlacementSpread:
		totalRes := 0
		for _, r := range reserves {
			totalRes += r
		}
		if totalRes > workers {
			return nil, fmt.Errorf("fleet: model reservations need %d workers, pool has %d", totalRes, workers)
		}
		shared := make([]int, 0, workers-totalRes)
		for w := totalRes; w < workers; w++ {
			shared = append(shared, w)
		}
		// Each model gets its own copy of its worker list: the rows must
		// not share a backing array, or editing one model's placement (e.g. in
		// a rebalance hook handed the assignment) would silently edit all of
		// them.
		next := 0
		for m := range out {
			row := make([]int, 0, workers)
			if m < len(reserves) {
				for i := 0; i < reserves[m]; i++ {
					row = append(row, next)
					next++
				}
			}
			row = append(row, shared...)
			if len(row) == 0 {
				return nil, fmt.Errorf("fleet: model %d has no workers: reservations take all %d and it reserves none", m, workers)
			}
			out[m] = row
		}
	case PlacementDedicated:
		if workers < models {
			return nil, fmt.Errorf("fleet: dedicated placement needs at least one worker per model (%d workers, %d models)", workers, models)
		}
		// Contiguous blocks of size floor(W/M), the first W%M models taking
		// one extra.
		base, extra := workers/models, workers%models
		next := 0
		for m := range out {
			n := base
			if m < extra {
				n++
			}
			for i := 0; i < n; i++ {
				out[m] = append(out[m], next)
				next++
			}
		}
	default:
		return nil, fmt.Errorf("fleet: unknown placement strategy %d", int(s))
	}
	return out, nil
}

// WorkerLoad is the per-worker load snapshot a rebalance hook sees.
type WorkerLoad struct {
	// Busy is the worker's accumulated serving time in virtual seconds.
	Busy float64
	// TuneBusy is the time the worker has spent holding background tunes.
	TuneBusy float64
	// FreeAt is the virtual time the worker next becomes idle.
	FreeAt float64
	// Queued counts pending requests whose model is currently placed on this
	// worker (a request placed on several workers counts on each). A split
	// request counts once from its split until its last chunk lands, matching
	// Live.Pending's accounting.
	Queued int
	// Class is the worker's device class (see Config.WorkerClasses), so a
	// rebalance hook can weigh heterogeneous capacity.
	Class int
}

// LoadSnapshot is one recorded observation of the pool's load, taken each
// time the rebalance pacing fires: the virtual time, the per-worker load,
// and the per-model queue backlog and cumulative served work. The pool keeps
// every snapshot of a run (Metrics.LoadHistory), so a rebalance hook can
// react to trends — sustained backlog, demand shifts — rather than a single
// instantaneous reading.
type LoadSnapshot struct {
	// Time is the virtual time the snapshot was taken.
	Time float64
	// Workers is the per-worker load at Time.
	Workers []WorkerLoad
	// QueuedByModel counts pending (admitted, unresolved) requests per
	// model: whole requests awaiting dispatch plus split requests in flight —
	// a split counts exactly once from its split until its last chunk lands,
	// so the snapshot's total always equals Live.Pending at snapshot time.
	QueuedByModel []int
	// WorkByModel is each model's cumulative served service time in virtual
	// seconds up to Time; the delta between two snapshots is the work the
	// model received in between.
	WorkByModel []float64
}

// RebalanceFunc is the load-aware placement hook: invoked during replay —
// paced by Config.RebalanceEvery, on both arrival and dispatch events, so it
// keeps firing while the queue drains after the last arrival and across
// arrival-free windows — with the current virtual time, the recorded load
// history (hist is every snapshot so far, oldest first; the last entry is
// the current one) and the current assignment. Returning a new Assignment
// moves future dispatch — queued and in-flight work is not migrated;
// returning nil keeps the current one. The hook must be deterministic for
// replays to be reproducible, must not retain or mutate hist (the pool owns
// it), and must not retain or mutate cur (edit a clone instead: the pool
// hands over a private copy on apply).
type RebalanceFunc func(now float64, hist []LoadSnapshot, cur Assignment) Assignment

// sortRequests orders a fleet stream by arrival time, stable.
func sortRequests(reqs []Request) {
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })
}
