package fleet

import (
	"fmt"
	"sort"
)

// Strategy selects how models are placed onto the pool's workers.
type Strategy int

const (
	// PlacementPacked places every model on every worker and consolidates
	// dispatch onto the lowest-indexed worker that can start a request
	// earliest — the bin-packing shape: light load concentrates on few
	// workers, which maximizes the idle capacity available to background
	// tunes (and, on real fleets, to power-gating).
	PlacementPacked Strategy = iota
	// PlacementSpread places every model on every worker and breaks dispatch
	// ties toward the worker with the least accumulated busy time — the
	// load-balancing shape: queueing interference between models is averaged
	// across the pool rather than concentrated.
	PlacementSpread
	// PlacementDedicated partitions the workers into contiguous disjoint
	// blocks, one per model (the remainder going to the earlier models), so
	// models never share a worker: the isolation shape, trading peak
	// capacity per model for zero cross-model interference.
	PlacementDedicated
)

func (s Strategy) String() string {
	switch s {
	case PlacementPacked:
		return "packed"
	case PlacementSpread:
		return "spread"
	case PlacementDedicated:
		return "dedicated"
	default:
		return fmt.Sprintf("Strategy(%d)", int(s))
	}
}

// ParseStrategy maps a strategy's String form back to its value — the
// flag-parsing inverse used by recflex-serve's -placement flag.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "packed":
		return PlacementPacked, nil
	case "spread":
		return PlacementSpread, nil
	case "dedicated":
		return PlacementDedicated, nil
	}
	return 0, fmt.Errorf("fleet: unknown placement strategy %q (want packed, spread or dedicated)", s)
}

// Assignment maps each model to the sorted worker ids it may run on.
type Assignment [][]int

// clone returns a deep copy, so a rebalance hook can edit freely.
func (a Assignment) clone() Assignment {
	out := make(Assignment, len(a))
	for m := range a {
		out[m] = append([]int(nil), a[m]...)
	}
	return out
}

// validate checks an assignment against the pool shape: every model holds at
// least one worker and every worker id is in range. (Workers left unassigned
// are legal — a rebalance may deliberately drain one.)
func (a Assignment) validate(models, workers int) error {
	if len(a) != models {
		return fmt.Errorf("fleet: assignment covers %d models, want %d", len(a), models)
	}
	for m := range a {
		if len(a[m]) == 0 {
			return fmt.Errorf("fleet: assignment leaves model %d with no workers", m)
		}
		for _, w := range a[m] {
			if w < 0 || w >= workers {
				return fmt.Errorf("fleet: assignment places model %d on worker %d (pool has %d)", m, w, workers)
			}
		}
	}
	return nil
}

// assign builds the initial assignment for a strategy.
func assign(s Strategy, models, workers int) (Assignment, error) {
	if workers <= 0 {
		return nil, fmt.Errorf("fleet: need at least one worker, got %d", workers)
	}
	out := make(Assignment, models)
	switch s {
	case PlacementPacked, PlacementSpread:
		// Each model gets its own copy of the full worker list: the rows must
		// not share a backing array, or editing one model's placement (e.g. in
		// a rebalance hook handed the assignment) would silently edit all of
		// them.
		for m := range out {
			all := make([]int, workers)
			for w := range all {
				all[w] = w
			}
			out[m] = all
		}
	case PlacementDedicated:
		if workers < models {
			return nil, fmt.Errorf("fleet: dedicated placement needs at least one worker per model (%d workers, %d models)", workers, models)
		}
		// Contiguous blocks of size floor(W/M), the first W%M models taking
		// one extra.
		base, extra := workers/models, workers%models
		next := 0
		for m := range out {
			n := base
			if m < extra {
				n++
			}
			for i := 0; i < n; i++ {
				out[m] = append(out[m], next)
				next++
			}
		}
	default:
		return nil, fmt.Errorf("fleet: unknown placement strategy %d", int(s))
	}
	return out, nil
}

// WorkerLoad is the per-worker load snapshot a rebalance hook sees.
type WorkerLoad struct {
	// Busy is the worker's accumulated serving time in virtual seconds.
	Busy float64
	// TuneBusy is the time the worker has spent holding background tunes.
	TuneBusy float64
	// FreeAt is the virtual time the worker next becomes idle.
	FreeAt float64
	// Queued counts queued requests whose model is currently placed on this
	// worker (a request placed on several workers counts on each).
	Queued int
}

// LoadSnapshot is one recorded observation of the pool's load, taken each
// time the rebalance pacing fires: the virtual time, the per-worker load,
// and the per-model queue backlog and cumulative served work. The pool keeps
// every snapshot of a run (Metrics.LoadHistory), so a rebalance hook can
// react to trends — sustained backlog, demand shifts — rather than a single
// instantaneous reading.
type LoadSnapshot struct {
	// Time is the virtual time the snapshot was taken.
	Time float64
	// Workers is the per-worker load at Time.
	Workers []WorkerLoad
	// QueuedByModel counts queued (admitted, undispatched) requests per
	// model, including split chunks still awaiting dispatch.
	QueuedByModel []int
	// WorkByModel is each model's cumulative served service time in virtual
	// seconds up to Time; the delta between two snapshots is the work the
	// model received in between.
	WorkByModel []float64
}

// RebalanceFunc is the load-aware placement hook: invoked during replay —
// paced by Config.RebalanceEvery, on both arrival and dispatch events, so it
// keeps firing while the queue drains after the last arrival and across
// arrival-free windows — with the current virtual time, the recorded load
// history (hist is every snapshot so far, oldest first; the last entry is
// the current one) and the current assignment. Returning a new Assignment
// moves future dispatch — queued and in-flight work is not migrated;
// returning nil keeps the current one. The hook must be deterministic for
// replays to be reproducible, must not retain or mutate hist (the pool owns
// it), and must not retain or mutate cur (edit a clone instead: the pool
// hands over a private copy on apply).
type RebalanceFunc func(now float64, hist []LoadSnapshot, cur Assignment) Assignment

// sortRequests orders a fleet stream by arrival time, stable.
func sortRequests(reqs []Request) {
	sort.SliceStable(reqs, func(a, b int) bool { return reqs[a].Arrival < reqs[b].Arrival })
}
