package fleet

import (
	"fmt"
	"math"
)

// AutoscaleConfig shapes the pool's elastic sizing. The autoscaler consumes
// the same windowed demand signal as RebalanceByLoad — the per-model queued
// backlog recorded into LoadHistory at each pacing tick — and grows or
// shrinks the worker set one step per tick:
//
//   - scale-out: when the window's mean backlog per active worker exceeds
//     UpBacklog and fewer than Max workers are active, a new worker of class
//     Class is added. It joins every model's placement immediately but its
//     first dispatch cannot start before ScaleOutLag virtual seconds have
//     passed — the simulated boot/attach cost.
//   - scale-in: when the mean backlog per active worker falls below
//     DownBacklog and more than Min workers are active, the highest-indexed
//     non-reserved worker drains: it leaves every model's placement (no new
//     dispatches) and retires once its in-flight work completes. Reserved
//     workers (Model.Reserve) are never drained, and a worker that is some
//     model's last placement is skipped.
//
// Every decision is a pure function of virtual time and the recorded
// history, so autoscaled sessions replay bit-identically.
type AutoscaleConfig struct {
	// Every is the decision pacing in virtual seconds (> 0). Like the
	// rebalance pacing it is evaluated on both arrival and dispatch events,
	// so the pool keeps shrinking while the queue drains.
	Every float64
	// Min and Max bound the active (non-draining) worker count. Min 0 means
	// 1; Max must be at least the initial worker count.
	Min, Max int
	// ScaleOutLag is the virtual time a new worker needs before its first
	// dispatch can start (>= 0).
	ScaleOutLag float64
	// Class is the device class of added workers (see Config.WorkerClasses).
	Class int
	// UpBacklog is the mean queued-per-active-worker level above which the
	// pool grows; 0 means 2.
	UpBacklog float64
	// DownBacklog is the level below which the pool shrinks; 0 means 0.25.
	DownBacklog float64
	// Window is how many recent load snapshots the backlog average spans;
	// 0 means 4.
	Window int
}

// Validate checks the autoscale shape against the initial worker count.
func (a *AutoscaleConfig) Validate(initial int) error {
	switch {
	case !(a.Every > 0) || math.IsInf(a.Every, 1):
		return fmt.Errorf("fleet: Autoscale.Every must be positive and finite, got %g", a.Every)
	case a.Min < 0:
		return fmt.Errorf("fleet: Autoscale.Min must be >= 0, got %d", a.Min)
	case a.Max < initial:
		return fmt.Errorf("fleet: Autoscale.Max %d below the initial %d workers", a.Max, initial)
	case a.Min > a.Max:
		return fmt.Errorf("fleet: Autoscale.Min %d above Max %d", a.Min, a.Max)
	case a.ScaleOutLag < 0 || math.IsNaN(a.ScaleOutLag) || math.IsInf(a.ScaleOutLag, 0):
		return fmt.Errorf("fleet: Autoscale.ScaleOutLag must be finite and >= 0, got %g", a.ScaleOutLag)
	case a.Class < 0:
		return fmt.Errorf("fleet: Autoscale.Class must be >= 0, got %d", a.Class)
	case a.UpBacklog < 0 || a.DownBacklog < 0:
		return fmt.Errorf("fleet: Autoscale backlog thresholds must be >= 0")
	case a.Window < 0:
		return fmt.Errorf("fleet: Autoscale.Window must be >= 0, got %d", a.Window)
	}
	if a.up() <= a.down() {
		return fmt.Errorf("fleet: Autoscale.UpBacklog %g must exceed DownBacklog %g after defaults (2, 0.25)", a.up(), a.down())
	}
	return nil
}

func (a *AutoscaleConfig) up() float64 {
	if a.UpBacklog == 0 {
		return 2
	}
	return a.UpBacklog
}

func (a *AutoscaleConfig) down() float64 {
	if a.DownBacklog == 0 {
		return 0.25
	}
	return a.DownBacklog
}

func (a *AutoscaleConfig) window() int {
	if a.Window == 0 {
		return 4
	}
	return a.Window
}

func (a *AutoscaleConfig) minWorkers() int {
	if a.Min < 1 {
		return 1
	}
	return a.Min
}

// ScaleEvent records one applied autoscaling decision.
type ScaleEvent struct {
	// Time is the virtual time of the decision.
	Time float64
	// Worker is the added (Delta +1) or drained (Delta -1) worker id.
	Worker int
	// Delta is +1 for a scale-out, -1 for a drain.
	Delta int
	// Workers is the active (non-draining) worker count after the decision.
	Workers int
}

// WorkerLife is one worker's lifetime in an autoscaled run. Worker ids are
// never reused: a drained worker's slot stays retired and a later scale-out
// gets a fresh id, so lifetimes and per-worker stats stay unambiguous.
type WorkerLife struct {
	// Worker is the worker id (index into Metrics.Workers).
	Worker int
	// Class is the worker's device class.
	Class int
	// AddedAt is when the worker joined the pool: the session's first
	// arrival for initial workers, the scale-out decision time for added
	// ones (its first dispatch waits out ScaleOutLag on top).
	AddedAt float64
	// RetiredAt is when the drained worker finished its in-flight work and
	// left the pool; NaN for workers still active at session end.
	RetiredAt float64
}

// maybeAutoscale evaluates the autoscaler at its virtual-time pacing,
// recording a load snapshot exactly like the rebalance hook does. Returns
// whether the pool's shape changed (the caller's dispatch candidate must be
// recomputed then).
func (l *Live) maybeAutoscale(now float64) (bool, error) {
	a := l.p.cfg.Autoscale
	if a == nil || now < l.lastScale+a.Every {
		return false, nil
	}
	l.lastScale = now
	l.recordSnapshot(now)

	hist := l.met.LoadHistory
	win := a.window()
	var backlog float64
	n := 0
	for i := len(hist) - 1; i >= 0 && n < win; i-- {
		for _, q := range hist[i].QueuedByModel {
			backlog += float64(q)
		}
		n++
	}
	backlog /= float64(n)

	active := l.activeWorkers()
	per := backlog / float64(active)
	switch {
	case per > a.up() && active < a.Max:
		l.scaleOut(now, a)
		return true, nil
	case per < a.down() && active > a.minWorkers():
		return l.scaleIn(now), nil
	}
	return false, nil
}

// activeWorkers counts workers accepting new dispatches.
func (l *Live) activeWorkers() int {
	n := 0
	for w := range l.drain {
		if !l.drain[w] {
			n++
		}
	}
	return n
}

// scaleOut adds one worker of the autoscaler's class: it joins every model's
// placement (ids only grow, so rows stay sorted) with its first availability
// lagged by ScaleOutLag — the engine's free-time mechanism models the boot
// cost without any extra event machinery.
func (l *Live) scaleOut(now float64, a *AutoscaleConfig) {
	st := l.st
	w := len(st.free)
	st.free = append(st.free, now+a.ScaleOutLag)
	st.busy = append(st.busy, 0)
	st.tune = append(st.tune, 0)
	st.served = append(st.served, 0)
	st.class = append(st.class, a.Class)
	l.drain = append(l.drain, false)
	l.lives = append(l.lives, WorkerLife{Worker: w, Class: a.Class, AddedAt: now, RetiredAt: math.NaN()})
	for m := range st.asg {
		st.asg[m] = append(st.asg[m], w)
	}
	l.met.ScaleEvents = append(l.met.ScaleEvents, ScaleEvent{Time: now, Worker: w, Delta: +1, Workers: l.activeWorkers()})
}

// scaleIn drains the highest-indexed eligible worker: reserved workers and
// any worker that is some model's last placement are skipped. The drained
// worker leaves every row immediately (drain-before-remove: no new
// dispatches) and retires once its in-flight work completes — with nothing
// new landing on it, its free time is final at decision time.
func (l *Live) scaleIn(now float64) bool {
	st := l.st
	target := -1
	for w := len(st.free) - 1; w >= 0; w-- {
		if l.drain[w] || w < l.p.reserved {
			continue
		}
		last := false
		for m := range st.asg {
			if len(st.asg[m]) == 1 && st.asg[m][0] == w {
				last = true
				break
			}
		}
		if last {
			continue
		}
		target = w
		break
	}
	if target < 0 {
		return false
	}
	l.drain[target] = true
	for m := range st.asg {
		row := st.asg[m]
		for i, x := range row {
			if x == target {
				st.asg[m] = append(row[:i], row[i+1:]...)
				break
			}
		}
	}
	if l.p.cfg.Preempt {
		l.preemptQueuedChunks(now)
	}
	l.lives[target].RetiredAt = math.Max(now, st.free[target])
	l.met.ScaleEvents = append(l.met.ScaleEvents, ScaleEvent{Time: now, Worker: target, Delta: -1, Workers: l.activeWorkers()})
	return true
}
