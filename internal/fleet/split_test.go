package fleet_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// Split-at-cap inside the shared pool: a long-tail request that would miss
// its deadline as one kernel degrades into SplitCap-sized chunks that
// dispatch as independent units of work, exactly like trace.DegradeSplitTail.
// Requests at or below the cap are served even when late; a tail request that
// cannot even start before its deadline is shed.
func TestFleetSplitAtCap(t *testing.T) {
	p := mustPool(t, fleet.Config{
		Queue: trace.QueuePolicy{
			Workers:  1,
			Deadline: 1.0,
			Policy:   trace.DegradeSplitTail,
			SplitCap: 512,
		},
	}, []fleet.Model{{Name: "m", Service: sizeSvc(1e-3)}}, oneTenant())
	reqs := []fleet.Request{
		// Tail request: 1280 > 512 and 1.28s of service blows the 1s
		// deadline, so it splits into chunks of 512, 512 and 256.
		{Arrival: 0, Size: 1280},
		// A small request queued behind the chunks; served late.
		{Arrival: 0.1, Size: 100},
		// A tail request whose deadline (0.7 absolute) passes before the
		// worker frees up at 1.28: it cannot start in time and is shed.
		{Arrival: 0.2, Size: 1280, Deadline: 0.5},
	}
	rep := mustServe(t, p, reqs)

	want := []fleet.Outcome{fleet.OutcomeSplit, fleet.OutcomeServed, fleet.OutcomeShedDeadline}
	for i, w := range want {
		if rep.Outcomes[i] != w {
			t.Errorf("Outcomes[%d] = %v, want %v", i, rep.Outcomes[i], w)
		}
	}
	// The split request's timings span its chunks: first chunk starts at 0,
	// the last ends at 1.28, and the summed chunk service equals the whole.
	if rep.Dispatch[0] != 0 || rep.Worker[0] != 0 {
		t.Errorf("split request dispatch=%g worker=%d, want first chunk at t=0 on worker 0", rep.Dispatch[0], rep.Worker[0])
	}
	if math.Abs(rep.Sojourn[0]-1.28) > 1e-9 || math.Abs(rep.Service[0]-1.28) > 1e-9 {
		t.Errorf("split request sojourn=%g service=%g, want 1.28 (three chunks back to back)", rep.Sojourn[0], rep.Service[0])
	}
	// The small request waits for all three chunks.
	if math.Abs(rep.Dispatch[1]-1.28) > 1e-9 {
		t.Errorf("trailing request dispatched at %g, want 1.28 (after the chunk train)", rep.Dispatch[1])
	}

	m := rep.Metrics
	if m.Served != 2 || m.SplitServed != 1 || m.ShedDeadline != 1 {
		t.Errorf("served=%d split=%d shed-deadline=%d, want 2/1/1", m.Served, m.SplitServed, m.ShedDeadline)
	}
	// Both served requests completed after their deadlines (1.28 > 1.0 and
	// 1.38 > 1.1): late, not shed.
	if m.Timeouts != 2 {
		t.Errorf("timeouts = %d, want 2 (split-at-cap serves late instead of shedding)", m.Timeouts)
	}
	// Chunks count toward queue occupancy: peak is request 1 + request 2
	// whole plus the two not-yet-dispatched chunks.
	if m.MaxQueueDepth != 4 {
		t.Errorf("max queue depth = %d, want 4 (two whole requests + two pending chunks)", m.MaxQueueDepth)
	}
	if m.Models[0].SplitServed != 1 || m.Tenants[0].SplitServed != 1 {
		t.Errorf("group split counts model=%d tenant=%d, want 1/1", m.Models[0].SplitServed, m.Tenants[0].SplitServed)
	}
	if s := m.String(); !strings.Contains(s, "split=1") {
		t.Errorf("pool metrics line %q does not surface the split count", s)
	}
	// The per-model view uses the trace vocabulary for the same run.
	tm := rep.ModelReports[0]
	if tm.Outcomes[0] != trace.OutcomeSplit || tm.Metrics.SplitServed != 1 {
		t.Errorf("model report outcome[0]=%v split=%d, want OutcomeSplit/1", tm.Outcomes[0], tm.Metrics.SplitServed)
	}
	if math.Abs(tm.Sojourn[0]-1.28) > 1e-9 {
		t.Errorf("model report sojourn[0] = %g, want 1.28", tm.Sojourn[0])
	}
}

// Determinism: split-at-cap replays are byte-identical across runs on a
// fresh pool, including chunk bookkeeping.
func TestFleetSplitDeterminism(t *testing.T) {
	run := func() *fleet.Report {
		p := mustPool(t, fleet.Config{
			Queue: trace.QueuePolicy{
				Workers:  2,
				Deadline: 0.05,
				Policy:   trace.DegradeSplitTail,
				SplitCap: 256,
			},
		}, []fleet.Model{
			{Name: "a", Service: sizeSvc(1e-4)},
			{Name: "b", Service: sizeSvc(2e-4)},
		}, oneTenant())
		var reqs []fleet.Request
		for i := 0; i < 60; i++ {
			size := 64 + (i%5)*16
			if i%7 == 0 {
				size = 1024 // tail
			}
			reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.003, Size: size, Model: i % 2})
		}
		return mustServe(t, p, reqs)
	}
	a, b := run(), run()
	if a.Metrics.SplitServed == 0 {
		t.Fatal("stream never exercised the split-at-cap path")
	}
	eqFleetReports(t, a, b)
}

// Regression for the shed-cause collapse in the per-model report: every shed,
// whatever its cause, used to be folded into OutcomeShedQueue, so the model
// view lost the quota/load/deadline split the pool metrics kept. All four
// causes must survive the translation.
func TestFleetModelReportShedCauses(t *testing.T) {
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
		{Name: "capped", Priority: 1, Quota: 1},
	}
	p := mustPool(t, fleet.Config{
		Queue:        trace.QueuePolicy{Workers: 1, QueueDepth: 4, Policy: trace.DegradeShed},
		ShedFraction: 0.5,
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, tenants)
	reqs := []fleet.Request{
		{Arrival: 0, Size: 16, Tenant: 2},    // dispatches immediately
		{Arrival: 0.05, Size: 16, Tenant: 2}, // queued, fills capped's quota
		{Arrival: 0.10, Size: 16, Tenant: 2}, // over quota
		{Arrival: 0.15, Size: 16, Tenant: 0}, // queued (occupancy 2)
		{Arrival: 0.20, Size: 16, Tenant: 0}, // low priority at >= 0.5*4 queued: load shed
		{Arrival: 0.25, Size: 16, Tenant: 1}, // queued (3)
		{Arrival: 0.30, Size: 16, Tenant: 1}, // queued (4)
		{Arrival: 0.35, Size: 16, Tenant: 1}, // hard queue bound
		// Arrives after one dispatch freed a slot; its 0.05s deadline is
		// blown by the time it reaches the worker, so DegradeShed drops it
		// at dispatch.
		{Arrival: 1.05, Size: 16, Tenant: 1, Deadline: 0.05},
	}
	rep := mustServe(t, p, reqs)

	wantOutcomes := map[int]fleet.Outcome{
		2: fleet.OutcomeShedQuota,
		4: fleet.OutcomeShedLoad,
		7: fleet.OutcomeShedQueue,
		8: fleet.OutcomeShedDeadline,
	}
	for i, w := range wantOutcomes {
		if rep.Outcomes[i] != w {
			t.Errorf("pool outcome[%d] = %v, want %v", i, rep.Outcomes[i], w)
		}
	}
	// The per-model trace report must keep the same cause split, not fold
	// everything into queue sheds.
	tm := rep.ModelReports[0]
	wantTrace := map[int]trace.Outcome{
		2: trace.OutcomeShedQuota,
		4: trace.OutcomeShedLoad,
		7: trace.OutcomeShedQueue,
		8: trace.OutcomeShedDeadline,
	}
	for i, w := range wantTrace {
		if tm.Outcomes[i] != w {
			t.Errorf("model report outcome[%d] = %v, want %v", i, tm.Outcomes[i], w)
		}
	}
	mm := tm.Metrics
	if mm.QuotaSheds != 1 || mm.LoadSheds != 1 || mm.QueueSheds != 1 || mm.DeadlineSheds != 1 {
		t.Errorf("model metrics quota=%d load=%d queue=%d deadline=%d, want 1 each",
			mm.QuotaSheds, mm.LoadSheds, mm.QueueSheds, mm.DeadlineSheds)
	}
	if s := mm.String(); !strings.Contains(s, "quota=1 load=1") {
		t.Errorf("model metrics line %q does not surface quota/load shed causes", s)
	}
}
