package fleet_test

import (
	"math"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// The fleet pool degenerates to the single-model serving engine: with one
// model, one tenant, FIFO admission and a dense (always-backlogged) stream,
// the pool's per-model report must match trace.Server's report exactly —
// sojourns, outcomes, worker accounting and shed causes. This pins the shared
// replay semantics: dispatch ties beat arrivals, least-loaded routing with
// lowest-index ties, chunk-ahead split dispatch, occupancy sampling points.
//
// The streams are deliberately backlogged from the second request on: when
// two or more workers sit idle before an arrival, the pool and the
// single-model engine may pick different (equally optimal) workers, which is
// an allowed divergence the equivalence deliberately avoids exercising.
func fleetTraceEquivalence(t *testing.T, name string, q trace.QueuePolicy, reqs []trace.Request, preempt bool) {
	t.Helper()
	svc := func(size int) (float64, error) { return float64(size) * 1e-3, nil }

	srv, err := trace.NewServer(trace.ServerConfig{
		Workers:    q.Workers,
		QueueDepth: q.QueueDepth,
		Deadline:   q.Deadline,
		Policy:     q.Policy,
		SplitCap:   q.SplitCap,
	}, svc)
	if err != nil {
		t.Fatal(err)
	}
	// Both engines replay the stream twice on the same instance: the second
	// run goes through the pooled replay scratch and the memoized service
	// times, and must stay exactly equivalent to the first.
	tr, err := srv.Serve(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if tr2, err := srv.Serve(reqs); err != nil {
		t.Fatal(err)
	} else {
		tr = tr2
	}

	pool := mustPool(t, fleet.Config{Queue: q, Admission: fleet.FIFO{}, Preempt: preempt},
		[]fleet.Model{{Name: "m", Service: sizeSvc(1e-3)}}, oneTenant())
	mustServe(t, pool, fleet.Merge(fleet.Stream{Reqs: reqs}))
	fr := mustServe(t, pool, fleet.Merge(fleet.Stream{Reqs: reqs}))
	mr := fr.ModelReports[0]
	if fr.Metrics.Preemptions != 0 {
		t.Fatalf("%s: %d preemptions in a single-priority run; the gate must never fire without a strictly higher-priority arrival", name, fr.Metrics.Preemptions)
	}

	for i := range reqs {
		if mr.Outcomes[i] != tr.Outcomes[i] {
			t.Errorf("%s: outcome[%d] fleet=%v trace=%v", name, i, mr.Outcomes[i], tr.Outcomes[i])
		}
		if !eqNaN(mr.Sojourn[i], tr.Sojourn[i]) {
			t.Errorf("%s: sojourn[%d] fleet=%g trace=%g", name, i, mr.Sojourn[i], tr.Sojourn[i])
		}
		if !eqNaN(fr.Sojourn[i], tr.Sojourn[i]) {
			t.Errorf("%s: pool-level sojourn[%d] = %g, trace = %g", name, i, fr.Sojourn[i], tr.Sojourn[i])
		}
	}
	fm, tm := mr.Metrics, tr.Metrics
	type counters struct {
		served, split, timeouts, queueSheds, deadlineSheds int
	}
	fc := counters{fm.Served, fm.SplitServed, fm.Timeouts, fm.QueueSheds, fm.DeadlineSheds}
	tc := counters{tm.Served, tm.SplitServed, tm.Timeouts, tm.QueueSheds, tm.DeadlineSheds}
	if fc != tc {
		t.Errorf("%s: counters diverge: fleet %+v, trace %+v", name, fc, tc)
	}
	if math.Abs(fm.Makespan-tm.Makespan) > 1e-9 {
		t.Errorf("%s: makespan fleet=%g trace=%g", name, fm.Makespan, tm.Makespan)
	}
	// Queue occupancy and worker accounting live at the pool level; with one
	// model they are the same quantities the single-model engine reports.
	pm := fr.Metrics
	if pm.MaxQueueDepth != tm.MaxQueueDepth {
		t.Errorf("%s: max queue depth fleet=%d trace=%d", name, pm.MaxQueueDepth, tm.MaxQueueDepth)
	}
	if len(pm.Workers) != len(tm.Workers) {
		t.Fatalf("%s: worker counts diverge: %d vs %d", name, len(pm.Workers), len(tm.Workers))
	}
	for w := range pm.Workers {
		if pm.Workers[w].Served != tm.Workers[w].Served || math.Abs(pm.Workers[w].Busy-tm.Workers[w].Busy) > 1e-9 {
			t.Errorf("%s: worker %d stats diverge: fleet served=%d busy=%g, trace served=%d busy=%g",
				name, w, pm.Workers[w].Served, pm.Workers[w].Busy, tm.Workers[w].Served, tm.Workers[w].Busy)
		}
	}
}

// denseStream emits n requests with sub-service inter-arrival gaps so the
// two-worker system is backlogged from the start; sizes cycle through a
// deterministic mix, with every seventh request a long-tail batch.
func denseStream(n int, withTails bool) []trace.Request {
	var reqs []trace.Request
	for i := 0; i < n; i++ {
		size := 64 + (i%5)*32
		if withTails && i%7 == 3 {
			size = 700
		}
		reqs = append(reqs, trace.Request{Arrival: float64(i) * 0.01, Size: size})
	}
	return reqs
}

func TestFleetEquivalenceBoundedQueue(t *testing.T) {
	fleetTraceEquivalence(t, "bounded-queue",
		trace.QueuePolicy{Workers: 2, QueueDepth: 6, Policy: trace.DegradeServe},
		denseStream(48, false), false)
}

func TestFleetEquivalenceDeadlineShed(t *testing.T) {
	fleetTraceEquivalence(t, "deadline-shed",
		trace.QueuePolicy{Workers: 2, Deadline: 0.4, Policy: trace.DegradeShed},
		denseStream(48, false), false)
}

func TestFleetEquivalenceSplitTail(t *testing.T) {
	fleetTraceEquivalence(t, "split-tail",
		trace.QueuePolicy{Workers: 2, Deadline: 1.0, Policy: trace.DegradeSplitTail, SplitCap: 256},
		denseStream(48, true), false)
}

// Preemption armed but never triggered: with one tenant there is never a
// strictly higher-priority whole request, so the preemption gate cannot fire
// and the split-heavy replay must stay bit-identical to the single-model
// engine — the zero-cost-when-unused contract of Config.Preempt.
func TestFleetEquivalenceSplitTailPreemptArmed(t *testing.T) {
	fleetTraceEquivalence(t, "split-tail-preempt-armed",
		trace.QueuePolicy{Workers: 2, Deadline: 1.0, Policy: trace.DegradeSplitTail, SplitCap: 256},
		denseStream(48, true), true)
}
