package fleet_test

import (
	"math"
	"sort"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// fuzzTenants is the tenant mix the admission fuzzer exercises: a quota-capped
// top-priority class, an unlimited middle class and a quota-capped bulk class.
var fuzzTenants = []fleet.TenantSpec{
	{Name: "bulk", Priority: 0, Quota: 3},
	{Name: "std", Priority: 1},
	{Name: "rt", Priority: 2, Quota: 2, Deadline: 0.02},
}

const fuzzQueueDepth = 8

// decodeFuzzStream turns raw fuzz bytes into an arrival-ordered fleet stream:
// 4 bytes per request (inter-arrival, size, tenant, deadline), capped at 96
// requests so the replay stays fast.
func decodeFuzzStream(data []byte) []fleet.Request {
	var reqs []fleet.Request
	now := 0.0
	for i := 0; i+4 <= len(data) && len(reqs) < 96; i += 4 {
		now += float64(data[i]) * 2e-4
		var deadline float64
		if d := data[i+3] % 4; d > 0 {
			deadline = float64(d) * 0.01
		}
		reqs = append(reqs, fleet.Request{
			Arrival:  now,
			Size:     16 + int(data[i+1]),
			Deadline: deadline,
			Model:    0,
			Tenant:   int(data[i+2]) % len(fuzzTenants),
		})
	}
	return reqs
}

// absDeadline mirrors the pool's deadline resolution for invariant checking.
func absDeadline(r fleet.Request) float64 {
	d := r.Deadline
	if d == 0 {
		d = fuzzTenants[r.Tenant].Deadline
	}
	if d == 0 {
		return math.Inf(1)
	}
	return r.Arrival + d
}

// FuzzFleetAdmissionOrdering checks the PriorityEDF invariants on arbitrary
// streams, reconstructing queue occupancy from the report's per-request
// arrival/dispatch times:
//
//   - no priority inversion: a request never dispatches while a queued,
//     already-arrived request of strictly higher priority exists;
//   - EDF within a class: among equal priorities, never past a queued request
//     with a strictly earlier (deadline, arrival, id) key;
//   - tenant quotas are never exceeded at admission;
//   - the shared queue bound is never exceeded;
//   - the replay is deterministic (two runs, identical outcomes).
func FuzzFleetAdmissionOrdering(f *testing.F) {
	f.Add([]byte{0, 16, 0, 0, 0, 16, 1, 0, 0, 16, 2, 0})
	f.Add([]byte{1, 200, 2, 1, 0, 40, 2, 2, 0, 30, 0, 0, 0, 30, 0, 0, 0, 30, 0, 0, 0, 30, 0, 0})
	f.Add([]byte{5, 255, 1, 3, 0, 0, 0, 0, 9, 9, 9, 9, 2, 128, 2, 2, 0, 64, 1, 1})

	newPool := func(f interface{ Fatal(...any) }) *fleet.Pool {
		p, err := fleet.NewPool(fleet.Config{
			Queue:        trace.QueuePolicy{Workers: 2, QueueDepth: fuzzQueueDepth, Policy: trace.DegradeServe},
			ShedFraction: 0.75,
		}, []fleet.Model{{Name: "m", Service: sizeSvc(3e-6)}}, fuzzTenants)
		if err != nil {
			f.Fatal(err)
		}
		return p
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs := decodeFuzzStream(data)
		if len(reqs) == 0 {
			t.Skip()
		}
		rep, err := newPool(t).Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := newPool(t).Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if rep.Outcomes[i] != rep2.Outcomes[i] || !eqNaN(rep.Dispatch[i], rep2.Dispatch[i]) ||
				rep.Worker[i] != rep2.Worker[i] {
				t.Fatalf("replay is nondeterministic at request %d", i)
			}
		}

		// With DegradeServe every admitted request is eventually served, so
		// "queued at time x" is exactly Arrival <= x < Dispatch. Dispatches
		// happen before arrivals at equal times, so occupancy comparisons
		// against an arrival use strict Dispatch > x; eligibility of j when i
		// dispatched uses strict Arrival[j] < Dispatch[i].
		admitted := func(i int) bool { return rep.Outcomes[i] == fleet.OutcomeServed }

		for i := range reqs {
			if !admitted(i) {
				continue
			}
			di := rep.Dispatch[i]
			pi := fuzzTenants[reqs[i].Tenant].Priority
			ki := [2]float64{absDeadline(reqs[i]), reqs[i].Arrival}
			for j := range reqs {
				if j == i || !admitted(j) {
					continue
				}
				// j was queued and dispatchable when i was chosen (the model
				// is packed on all workers, so placement never excludes j).
				if !(reqs[j].Arrival < di && rep.Dispatch[j] > di) {
					continue
				}
				pj := fuzzTenants[reqs[j].Tenant].Priority
				if pj > pi {
					t.Fatalf("priority inversion: request %d (prio %d) dispatched at %g while %d (prio %d, arrived %g) was queued",
						i, pi, di, j, pj, reqs[j].Arrival)
				}
				if pj == pi {
					kj := [2]float64{absDeadline(reqs[j]), reqs[j].Arrival}
					if kj[0] < ki[0] || (kj[0] == ki[0] && kj[1] < ki[1]) ||
						(kj[0] == ki[0] && kj[1] == ki[1] && j < i) {
						t.Fatalf("EDF inversion within priority %d: request %d (deadline %g) dispatched at %g while %d (deadline %g) was queued",
							pi, i, ki[0], di, j, kj[0])
					}
				}
			}
		}

		// Quota and queue-bound invariants at each admission instant. The
		// stream is arrival-ordered, so only earlier requests can occupy the
		// queue when request i arrives; an equal-arrival earlier request has
		// been admitted already (stable order), an equal-arrival dispatch has
		// already left.
		for i := range reqs {
			ai := reqs[i].Arrival
			total := 0
			byTenant := make([]int, len(fuzzTenants))
			for j := 0; j < i; j++ {
				if admitted(j) && rep.Dispatch[j] > ai {
					total++
					byTenant[reqs[j].Tenant]++
				}
			}
			q := fuzzTenants[reqs[i].Tenant].Quota
			switch rep.Outcomes[i] {
			case fleet.OutcomeServed:
				if q > 0 && byTenant[reqs[i].Tenant] >= q {
					t.Fatalf("quota exceeded: request %d admitted with %d of tenant %s queued (quota %d)",
						i, byTenant[reqs[i].Tenant], fuzzTenants[reqs[i].Tenant].Name, q)
				}
				if total >= fuzzQueueDepth {
					t.Fatalf("queue bound exceeded: request %d admitted with %d queued (depth %d)", i, total, fuzzQueueDepth)
				}
			case fleet.OutcomeShedQuota:
				if q == 0 || byTenant[reqs[i].Tenant] < q {
					t.Fatalf("spurious quota shed: request %d shed with %d queued (quota %d)", i, byTenant[reqs[i].Tenant], q)
				}
			case fleet.OutcomeShedLoad:
				if fuzzTenants[reqs[i].Tenant].Priority == 2 {
					t.Fatalf("load shed hit the top priority class at request %d", i)
				}
				if float64(total) < 0.75*fuzzQueueDepth {
					t.Fatalf("spurious load shed: request %d shed at occupancy %d", i, total)
				}
			case fleet.OutcomeShedQueue:
				if total < fuzzQueueDepth {
					t.Fatalf("spurious queue shed: request %d shed at occupancy %d (depth %d)", i, total, fuzzQueueDepth)
				}
			case fleet.OutcomeShedDeadline:
				t.Fatalf("deadline shed under DegradeServe at request %d", i)
			}
		}
	})
}

// preemptTenants is the two-class mix the preemption fuzzer exercises: bulk
// batch traffic whose long requests split, and a higher-priority interactive
// class whose arrivals preempt queued chunks at chunk boundaries.
var preemptTenants = []fleet.TenantSpec{
	{Name: "batch", Priority: 0},
	{Name: "rt", Priority: 1},
}

// decodePreemptStream turns raw fuzz bytes into an arrival-ordered two-class
// stream with sizes that frequently exceed the split cap: 3 bytes per request
// (inter-arrival, size, tenant), capped at 96 requests.
func decodePreemptStream(data []byte) []fleet.Request {
	var reqs []fleet.Request
	now := 0.0
	for i := 0; i+3 <= len(data) && len(reqs) < 96; i += 3 {
		now += float64(data[i]) * 2e-4
		reqs = append(reqs, fleet.Request{
			Arrival: now,
			Size:    16 + 2*int(data[i+1]),
			Tenant:  int(data[i+2]) % len(preemptTenants),
		})
	}
	return reqs
}

// FuzzPreemptRequeue checks the chunk-boundary preemption invariants on
// arbitrary two-class split-heavy streams with Config.Preempt armed:
//
//   - no lost chunks: every admission resolves to a final outcome, nothing is
//     pending after Close, and every completed split carries positive summed
//     service;
//   - OutcomePreempted is never a request's final outcome (it is a per-chunk
//     requeue notification only);
//   - the replay is deterministic, including the preemption count;
//   - dispatch and sojourn stay causally consistent (no dispatch before
//     arrival, no negative sojourn) across requeues.
func FuzzPreemptRequeue(f *testing.F) {
	f.Add([]byte{0, 255, 0, 1, 4, 1, 0, 4, 1, 0, 200, 0})
	f.Add([]byte{0, 128, 0, 0, 128, 0, 2, 8, 1, 1, 8, 1, 0, 255, 0, 3, 16, 1})
	f.Add([]byte{9, 32, 0, 9, 250, 1, 0, 40, 0, 0, 40, 1, 0, 240, 0, 0, 8, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs := decodePreemptStream(data)
		if len(reqs) == 0 {
			t.Skip()
		}
		run := func() *fleet.Report {
			p, err := fleet.NewPool(fleet.Config{
				Queue:   trace.QueuePolicy{Workers: 2, Deadline: 0.05, Policy: trace.DegradeSplitTail, SplitCap: 64},
				Preempt: true,
			}, []fleet.Model{{Name: "m", Service: sizeSvc(1e-4)}}, preemptTenants)
			if err != nil {
				t.Fatal(err)
			}
			lv := p.Begin()
			for _, r := range reqs {
				if _, _, err := lv.Admit(r); err != nil {
					t.Fatal(err)
				}
			}
			rep, _, err := lv.Close()
			if err != nil {
				t.Fatal(err)
			}
			if pending := lv.Pending(); pending != 0 {
				t.Fatalf("%d requests still pending after Close: a preempted chunk was lost", pending)
			}
			return rep
		}
		rep, rep2 := run(), run()
		if rep.Metrics.Preemptions != rep2.Metrics.Preemptions {
			t.Fatalf("preemption count nondeterministic: %d vs %d", rep.Metrics.Preemptions, rep2.Metrics.Preemptions)
		}
		for i := range reqs {
			if rep.Outcomes[i] != rep2.Outcomes[i] || !eqNaN(rep.Sojourn[i], rep2.Sojourn[i]) ||
				!eqNaN(rep.Dispatch[i], rep2.Dispatch[i]) || rep.Worker[i] != rep2.Worker[i] ||
				!eqNaN(rep.Service[i], rep2.Service[i]) {
				t.Fatalf("replay nondeterministic at request %d", i)
			}
		}
		m := rep.Metrics
		if m.Served+m.Shed() != len(reqs) {
			t.Fatalf("served %d + shed %d != %d admissions", m.Served, m.Shed(), len(reqs))
		}
		for i := range reqs {
			switch rep.Outcomes[i] {
			case fleet.OutcomeServed, fleet.OutcomeSplit:
				if math.IsNaN(rep.Sojourn[i]) || rep.Sojourn[i] < 0 {
					t.Fatalf("request %d served with sojourn %g", i, rep.Sojourn[i])
				}
				if rep.Dispatch[i] < reqs[i].Arrival {
					t.Fatalf("request %d dispatched at %g before its arrival %g", i, rep.Dispatch[i], reqs[i].Arrival)
				}
				if rep.Outcomes[i] == fleet.OutcomeSplit {
					if !(rep.Service[i] > 0) {
						t.Fatalf("split %d completed with service %g; its chunks were lost", i, rep.Service[i])
					}
					if reqs[i].Arrival+rep.Sojourn[i] < rep.Dispatch[i] {
						t.Fatalf("split %d completes at %g before its first dispatch %g", i, reqs[i].Arrival+rep.Sojourn[i], rep.Dispatch[i])
					}
				}
			default:
				if !rep.Outcomes[i].Shed() {
					t.Fatalf("request %d resolved with non-final outcome %v (preempted must never be final)", i, rep.Outcomes[i])
				}
			}
		}
	})
}

// wfFuzzTenants is the two-class mix the weighted-fair fuzzer exercises.
var wfFuzzTenants = []fleet.TenantSpec{
	{Name: "batch", Priority: 0},
	{Name: "interactive", Priority: 1},
}

const (
	wfFuzzQuantum = 128
	wfFuzzMaxSize = 16 + 255
)

// decodeWFStream turns raw fuzz bytes into an arrival-ordered two-class
// stream: 3 bytes per request (inter-arrival, size, tenant), capped at 96
// requests.
func decodeWFStream(data []byte) []fleet.Request {
	var reqs []fleet.Request
	now := 0.0
	for i := 0; i+3 <= len(data) && len(reqs) < 96; i += 3 {
		now += float64(data[i]) * 2e-4
		reqs = append(reqs, fleet.Request{
			Arrival: now,
			Size:    16 + int(data[i+1]),
			Tenant:  int(data[i+2]) % len(wfFuzzTenants),
		})
	}
	return reqs
}

// FuzzWeightedFairDispatch checks the DRR dispatcher's core guarantees on
// arbitrary two-class streams:
//
//   - the replay is deterministic, including policy reuse across runs on one
//     pool (deficit counters and the round cursor must reset per replay);
//   - no admitted request is lost (DegradeServe, unbounded queue: everything
//     is served);
//   - weighted share: over any prefix of dispatches during which both classes
//     stay backlogged, each class's dispatched work is at least its weight
//     share of the total minus a constant DRR slack.
func FuzzWeightedFairDispatch(f *testing.F) {
	f.Add([]byte{0, 128, 0, 0, 128, 1, 0, 128, 0, 0, 128, 1})
	f.Add([]byte{1, 255, 1, 0, 16, 0, 0, 16, 0, 0, 16, 0, 2, 64, 1, 0, 64, 1})
	f.Add([]byte{9, 32, 0, 9, 200, 1, 0, 40, 0, 0, 40, 1, 0, 40, 0, 0, 40, 1, 0, 40, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		reqs := decodeWFStream(data)
		if len(reqs) == 0 {
			t.Skip()
		}
		wf, err := fleet.NewWeightedFair(wfFuzzTenants, fleet.WeightedFairConfig{
			Weights: map[int]float64{1: 3, 0: 1},
			Quantum: wfFuzzQuantum,
		})
		if err != nil {
			t.Fatal(err)
		}
		p, err := fleet.NewPool(fleet.Config{
			Queue:     trace.QueuePolicy{Workers: 1, Policy: trace.DegradeServe},
			Admission: wf,
		}, []fleet.Model{{Name: "m", Service: sizeSvc(1e-4)}}, wfFuzzTenants)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := p.Serve(reqs)
		if err != nil {
			t.Fatal(err)
		}
		rep2, err := p.Serve(reqs) // same pool: exercises the per-replay policy reset
		if err != nil {
			t.Fatal(err)
		}
		for i := range reqs {
			if rep.Outcomes[i] != fleet.OutcomeServed {
				t.Fatalf("request %d not served under DegradeServe with an unbounded queue: %v", i, rep.Outcomes[i])
			}
			if rep2.Outcomes[i] != rep.Outcomes[i] || !eqNaN(rep.Dispatch[i], rep2.Dispatch[i]) ||
				rep.Worker[i] != rep2.Worker[i] {
				t.Fatalf("pool reuse is nondeterministic at request %d", i)
			}
		}

		// Weighted-share invariant over the both-classes-backlogged prefix of
		// the dispatch order. "Backlogged at x" means some request of the
		// class arrived strictly before x and dispatches strictly after x.
		order := make([]int, len(reqs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return rep.Dispatch[order[a]] < rep.Dispatch[order[b]] })
		backlogged := func(class int, x float64) bool {
			for j := range reqs {
				if reqs[j].Tenant == class && reqs[j].Arrival < x && rep.Dispatch[j] > x {
					return true
				}
			}
			return false
		}
		work := [2]float64{}
		total := 0.0
		for _, i := range order {
			x := rep.Dispatch[i]
			if !backlogged(0, x) || !backlogged(1, x) {
				break
			}
			work[reqs[i].Tenant] += float64(reqs[i].Size)
			total += float64(reqs[i].Size)
		}
		slack := 4.0 * float64(wfFuzzQuantum*3+wfFuzzMaxSize)
		for class := range work {
			share := wf.WeightShare(wfFuzzTenants[class].Priority)
			if work[class] < share*total-slack {
				t.Fatalf("class %d starved: dispatched %g of %g backlogged work, want >= %g (share %g minus DRR slack %g)",
					class, work[class], total, share*total-slack, share, slack)
			}
		}
	})
}
