package fleet_test

import (
	"math"
	"reflect"
	"sync"
	"testing"

	"repro/internal/fleet"
	"repro/internal/trace"
)

// snap builds a LoadSnapshot for the RebalanceByLoad unit tests.
func snap(t float64, workers int, queued []int, work []float64) fleet.LoadSnapshot {
	return fleet.LoadSnapshot{
		Time:          t,
		Workers:       make([]fleet.WorkerLoad, workers),
		QueuedByModel: queued,
		WorkByModel:   work,
	}
}

// RebalanceByLoad partitions workers proportionally to windowed demand —
// served work plus mean backlog — and stays quiet when nothing changes.
func TestRebalanceByLoadPartition(t *testing.T) {
	reb := fleet.NewRebalanceByLoad(fleet.RebalanceByLoadConfig{})
	packed := fleet.Assignment{{0, 1, 2, 3}, {0, 1, 2, 3}}

	// Work-dominated demand 3:1 over the window -> 3 workers vs 1.
	hist := []fleet.LoadSnapshot{
		snap(0, 4, []int{0, 0}, []float64{0, 0}),
		snap(1, 4, []int{0, 0}, []float64{3, 1}),
	}
	if got := reb(1, hist, packed); !reflect.DeepEqual(got, fleet.Assignment{{0, 1, 2}, {3}}) {
		t.Errorf("work-proportional partition = %v, want [[0 1 2] [3]]", got)
	}

	// A starved model (all backlog, no served work) still registers: model 1
	// received nothing but its queue is full, so the two demand signals weigh
	// equally and the split is even.
	hist = []fleet.LoadSnapshot{
		snap(0, 4, []int{0, 5}, []float64{0, 0}),
		snap(1, 4, []int{0, 5}, []float64{1, 0}),
	}
	if got := reb(1, hist, packed); !reflect.DeepEqual(got, fleet.Assignment{{0, 1}, {2, 3}}) {
		t.Errorf("starved-model partition = %v, want [[0 1] [2 3]]", got)
	}

	// Quiet cases: no history, fewer workers than models, no demand at all,
	// and a partition identical to the current assignment.
	if got := reb(0, nil, packed); got != nil {
		t.Errorf("empty history: got %v, want nil", got)
	}
	small := []fleet.LoadSnapshot{snap(0, 1, []int{1, 1}, []float64{1, 1})}
	if got := reb(0, small, fleet.Assignment{{0}, {0}}); got != nil {
		t.Errorf("workers < models: got %v, want nil", got)
	}
	idle := []fleet.LoadSnapshot{snap(0, 4, []int{0, 0}, []float64{0, 0})}
	if got := reb(0, idle, packed); got != nil {
		t.Errorf("zero demand: got %v, want nil", got)
	}
	cur := fleet.Assignment{{0, 1, 2}, {3}}
	hist = []fleet.LoadSnapshot{
		snap(0, 4, []int{0, 0}, []float64{0, 0}),
		snap(1, 4, []int{0, 0}, []float64{3, 1}),
	}
	if got := reb(1, hist, cur); got != nil {
		t.Errorf("unchanged partition: got %v, want nil", got)
	}

	// Window restricts the demand estimate to the most recent snapshots: with
	// Window 1 the work delta collapses to zero and only the latest backlog
	// counts.
	windowed := fleet.NewRebalanceByLoad(fleet.RebalanceByLoadConfig{Window: 1})
	hist = []fleet.LoadSnapshot{
		snap(0, 4, []int{9, 0}, []float64{0, 0}),
		snap(1, 4, []int{0, 3}, []float64{100, 0}),
	}
	if got := windowed(1, hist, packed); !reflect.DeepEqual(got, fleet.Assignment{{0}, {1, 2, 3}}) {
		t.Errorf("windowed partition = %v, want [[0] [1 2 3]] (only the last backlog counts)", got)
	}
}

// Regression for the rebalance pacing bug: the hook used to be evaluated only
// on the arrival branch of the event loop, so it fell silent the moment
// arrivals stopped — a queue draining after the last arrival could never be
// rebalanced. The pacing now also fires on dispatch events, and an applied
// drain-phase assignment steers the remaining dispatches.
func TestFleetRebalanceDuringDrain(t *testing.T) {
	var times []float64
	p := mustPool(t, fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 2},
		RebalanceEvery: 1,
		Rebalance: func(now float64, hist []fleet.LoadSnapshot, cur fleet.Assignment) fleet.Assignment {
			times = append(times, now)
			if len(cur[0]) == 1 && cur[0][0] == 1 {
				return nil // already pinned
			}
			return fleet.Assignment{{1}}
		},
	}, []fleet.Model{{Name: "m", Service: constSvc(1.0)}}, oneTenant())

	// All six arrivals land within 0.25s; with 1s service times the queue
	// drains for ~4 more virtual seconds after the last arrival.
	var reqs []fleet.Request
	for i := 0; i < 6; i++ {
		reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.05, Size: 16})
	}
	rep := mustServe(t, p, reqs)

	if len(times) == 0 {
		t.Fatal("rebalance hook never ran")
	}
	lastArrival := reqs[len(reqs)-1].Arrival
	drainCalls := 0
	for _, ts := range times {
		if ts > lastArrival {
			drainCalls++
		}
	}
	if drainCalls < 3 {
		t.Errorf("hook ran %d times during the drain phase (call times %v), want >= 3: pacing must keep firing on dispatch events after the last arrival", drainCalls, times)
	}
	// The drain-phase assignment steers dispatch: everything after the pin
	// lands on worker 1.
	if want := []int{0, 1, 1, 1, 1, 1}; !reflect.DeepEqual(rep.Worker, want) {
		t.Errorf("workers %v, want %v (post-rebalance dispatches pinned to worker 1)", rep.Worker, want)
	}
	if rep.Metrics.Rebalances != 1 {
		t.Errorf("Rebalances = %d, want 1 (hook returns nil once pinned)", rep.Metrics.Rebalances)
	}
	if len(rep.Metrics.LoadHistory) != len(times) {
		t.Errorf("LoadHistory has %d snapshots, hook saw %d calls; every pacing tick must record one", len(rep.Metrics.LoadHistory), len(times))
	}
}

// The built-in rebalancer moves workers toward the loaded model end to end,
// and the whole run stays deterministic.
func TestFleetRebalanceByLoadEndToEnd(t *testing.T) {
	run := func() *fleet.Report {
		p := mustPool(t, fleet.Config{
			Queue:          trace.QueuePolicy{Workers: 4},
			RebalanceEvery: 0.5,
			Rebalance:      fleet.NewRebalanceByLoad(fleet.RebalanceByLoadConfig{}),
		}, []fleet.Model{
			{Name: "hot", Service: constSvc(0.4)},
			{Name: "cold", Service: constSvc(0.4)},
		}, oneTenant())
		var reqs []fleet.Request
		for i := 0; i < 40; i++ {
			reqs = append(reqs, fleet.Request{Arrival: float64(i) * 0.1, Size: 64, Model: 0})
		}
		for i := 0; i < 4; i++ {
			reqs = append(reqs, fleet.Request{Arrival: float64(i) * 1.0, Size: 64, Model: 1})
		}
		return mustServe(t, p, fleet.Merge(fleetToStream(reqs)...))
	}
	rep := run()
	if rep.Metrics.Rebalances == 0 {
		t.Fatal("built-in rebalancer never applied a partition under 10:1 demand skew")
	}
	if len(rep.Metrics.LoadHistory) == 0 {
		t.Fatal("no load history recorded despite an armed rebalance hook")
	}
	eqFleetReports(t, rep, run())
}

// fleetToStream regroups requests by (model, tenant) for Merge.
func fleetToStream(reqs []fleet.Request) []fleet.Stream {
	var streams []fleet.Stream
	byKey := map[[2]int]int{}
	for _, r := range reqs {
		k := [2]int{r.Model, r.Tenant}
		i, ok := byKey[k]
		if !ok {
			i = len(streams)
			byKey[k] = i
			streams = append(streams, fleet.Stream{Model: r.Model, Tenant: r.Tenant})
		}
		streams[i].Reqs = append(streams[i].Reqs, trace.Request{Arrival: r.Arrival, Size: r.Size, Deadline: r.Deadline})
	}
	return streams
}

// Supervised models hot-swap while the built-in rebalancer re-partitions the
// pool and readers hammer both LiveSets: the rebalancer path must be safe
// under -race, and the replay must stay exact.
func TestFleetRebalanceUnderLoad(t *testing.T) {
	models := []fleet.Model{
		driftyModel(t, "a", 2e-3, 0.2),
		driftyModel(t, "b", 1e-3, 0.5),
	}
	tenants := []fleet.TenantSpec{
		{Name: "lo", Priority: 0},
		{Name: "hi", Priority: 1},
	}
	p := mustPool(t, fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 3, QueueDepth: 256},
		Placement:      fleet.PlacementSpread,
		RebalanceEvery: 0.2,
		Rebalance:      fleet.NewRebalanceByLoad(fleet.RebalanceByLoadConfig{Window: 8}),
	}, models, tenants)
	reqs := fleetStream(t, 1200, 42)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for m := range models {
		sv := models[m].Supervisor
		for r := 0; r < 3; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					if g := sv.Live().Current(); g == nil || g.Service == nil {
						t.Error("torn LiveSet read during rebalanced serving")
						return
					}
				}
			}()
		}
	}
	rep, err := p.Serve(reqs)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if rep.Outcomes[i] == fleet.OutcomeServed && math.IsNaN(rep.Sojourn[i]) {
			t.Fatalf("request %d served but lost its sojourn", i)
		}
	}
	if rep.Metrics.Served+rep.Metrics.Shed() != len(reqs) {
		t.Errorf("served %d + shed %d != %d requests", rep.Metrics.Served, rep.Metrics.Shed(), len(reqs))
	}
}
