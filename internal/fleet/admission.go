package fleet

import (
	"fmt"
	"math"
)

// Outcome records how the pool resolved one request.
type Outcome uint8

const (
	// OutcomeServed: dispatched and served (possibly late; see Timeouts).
	OutcomeServed Outcome = iota
	// OutcomeShedQueue: dropped on arrival at a full shared admission queue.
	OutcomeShedQueue
	// OutcomeShedQuota: dropped on arrival because the tenant's queue quota
	// was exhausted.
	OutcomeShedQuota
	// OutcomeShedLoad: dropped on arrival by load-aware early shedding — the
	// queue was near its bound and the tenant is below the pool's highest
	// priority class.
	OutcomeShedLoad
	// OutcomeShedDeadline: dropped at dispatch because the deadline could not
	// be met — under DegradeShed for any size, under DegradeSplitTail for a
	// tail request that cannot even start before its deadline.
	OutcomeShedDeadline
	// OutcomeSplit: a long-tail request served through the split-at-cap
	// degradation fallback (see trace.DegradeSplitTail); its chunks all
	// completed.
	OutcomeSplit
	// OutcomePreempted: an informational per-chunk resolution under
	// Config.Preempt — a queued split chunk lost its dispatch-ahead right to
	// a strictly higher-priority waiting request (or to an applied rebalance
	// / scale-in decision) and was requeued at the preemption time. It is
	// never a request's final outcome: the parent request still resolves as
	// OutcomeSplit (or a shed), with its sojourn measured from the original
	// arrival. Preempt events surface only in the live event stream and
	// Metrics.Preemptions; the gateway keeps them out of session logs.
	OutcomePreempted
)

func (o Outcome) String() string {
	switch o {
	case OutcomeServed:
		return "served"
	case OutcomeShedQueue:
		return "shed-queue"
	case OutcomeShedQuota:
		return "shed-quota"
	case OutcomeShedLoad:
		return "shed-load"
	case OutcomeShedDeadline:
		return "shed-deadline"
	case OutcomeSplit:
		return "split"
	case OutcomePreempted:
		return "preempted"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Shed reports whether the request was dropped without service.
func (o Outcome) Shed() bool {
	switch o {
	case OutcomeShedQueue, OutcomeShedQuota, OutcomeShedLoad, OutcomeShedDeadline:
		return true
	}
	return false
}

// QueuedRequest is the admission policy's view of one request: arrival,
// absolute deadline, and its model/tenant/priority tags. ID is the admission
// sequence number (arrival order), the deterministic last-resort tie-break.
type QueuedRequest struct {
	ID       int
	Arrival  float64
	Deadline float64 // absolute completion deadline; +Inf if none
	Size     int
	Model    int
	Tenant   int
	Priority int
}

// PoolLoad is the queue-occupancy snapshot an admission decision sees.
type PoolLoad struct {
	// Now is the arrival's virtual time.
	Now float64
	// Queued is the total number of queued (admitted, undispatched)
	// requests, excluding the arrival under decision. Split chunks awaiting
	// dispatch count too: they occupy the shared buffer exactly like whole
	// requests, matching the single-model engine's queue-bound accounting.
	Queued int
	// QueueDepth is the configured shared bound (0 = unbounded).
	QueueDepth int
	// QueuedByTenant counts queued requests per tenant.
	QueuedByTenant []int
}

// AdmissionPolicy decides who enters the shared queue and who dispatches
// next. Implementations must be deterministic — the pool replay is exact,
// and a nondeterministic policy would break reproducibility — and must not
// retain the slices they are handed.
type AdmissionPolicy interface {
	// Name labels the policy in reports.
	Name() string
	// Admit decides whether an arriving request enters the queue; on
	// rejection it returns the shed outcome to record (one of
	// OutcomeShedQueue, OutcomeShedQuota, OutcomeShedLoad).
	Admit(r QueuedRequest, load PoolLoad) (bool, Outcome)
	// Next selects which eligible queued request dispatches on a freed
	// worker, as an index into eligible. eligible is non-empty, ordered by
	// admission (ID ascending), and every entry has Arrival <= the dispatch
	// time.
	Next(eligible []QueuedRequest, now float64) int
}

// PriorityEDF is the default admission policy: strict priority classes with
// earliest-deadline-first dispatch within a class, per-tenant queue quotas,
// and optional load-aware early shedding of below-top-priority arrivals.
//
// Dispatch order: the highest Priority among eligible requests wins; within
// that class the earliest absolute deadline wins; deadline ties fall back to
// arrival time, then admission ID — so the policy degrades to FIFO when no
// deadlines are configured, and is total and deterministic always.
type PriorityEDF struct {
	tenants      []TenantSpec
	shedFraction float64
	maxPriority  int
}

// NewPriorityEDF builds the default policy over the pool's tenants.
// shedFraction arms load-aware early shedding (see Config.ShedFraction);
// 0 disables it.
func NewPriorityEDF(tenants []TenantSpec, shedFraction float64) *PriorityEDF {
	maxPrio := math.MinInt
	for _, t := range tenants {
		if t.Priority > maxPrio {
			maxPrio = t.Priority
		}
	}
	return &PriorityEDF{
		tenants:      append([]TenantSpec(nil), tenants...),
		shedFraction: shedFraction,
		maxPriority:  maxPrio,
	}
}

// Name implements AdmissionPolicy.
func (p *PriorityEDF) Name() string { return "priority-edf" }

// Admit implements AdmissionPolicy: tenant quota first (the tenant's own
// budget is the tightest bound), then load-aware early shedding, then the
// shared queue bound.
func (p *PriorityEDF) Admit(r QueuedRequest, load PoolLoad) (bool, Outcome) {
	if q := p.tenants[r.Tenant].Quota; q > 0 && load.QueuedByTenant[r.Tenant] >= q {
		return false, OutcomeShedQuota
	}
	if load.QueueDepth > 0 {
		if p.shedFraction > 0 && r.Priority < p.maxPriority &&
			float64(load.Queued) >= p.shedFraction*float64(load.QueueDepth) {
			return false, OutcomeShedLoad
		}
		if load.Queued >= load.QueueDepth {
			return false, OutcomeShedQueue
		}
	}
	return true, OutcomeServed
}

// Next implements AdmissionPolicy: EDF within the highest eligible priority
// class.
func (p *PriorityEDF) Next(eligible []QueuedRequest, _ float64) int {
	best := 0
	for i := 1; i < len(eligible); i++ {
		if edfBefore(eligible[i], eligible[best]) {
			best = i
		}
	}
	return best
}

// edfBefore reports whether a dispatches strictly before b under
// priority-then-EDF ordering.
func edfBefore(a, b QueuedRequest) bool {
	if a.Priority != b.Priority {
		return a.Priority > b.Priority
	}
	if a.Deadline != b.Deadline {
		return a.Deadline < b.Deadline
	}
	if a.Arrival != b.Arrival {
		return a.Arrival < b.Arrival
	}
	return a.ID < b.ID
}

// FIFO is the contrast policy: admission respects only the shared queue
// bound (no quotas, no early shedding) and dispatch is strict arrival order
// across all tenants — what a priority-blind pool would do. Useful as the
// baseline that shows what PriorityEDF buys the latency-critical tenant.
type FIFO struct{}

// Name implements AdmissionPolicy.
func (FIFO) Name() string { return "fifo" }

// Admit implements AdmissionPolicy.
func (FIFO) Admit(_ QueuedRequest, load PoolLoad) (bool, Outcome) {
	if load.QueueDepth > 0 && load.Queued >= load.QueueDepth {
		return false, OutcomeShedQueue
	}
	return true, OutcomeServed
}

// Next implements AdmissionPolicy: eligible is ordered by admission ID, so
// the head is the FIFO choice.
func (FIFO) Next([]QueuedRequest, float64) int { return 0 }

// ParsePolicy maps a policy name to its implementation over the given
// tenants — the flag-parsing entry used by recflex-serve's -policy flag.
// weights configures the weighted-fair policy's per-priority-class dispatch
// weights (see WeightedFairConfig.Weights) and is ignored by the others.
func ParsePolicy(name string, tenants []TenantSpec, shedFraction float64, weights map[int]float64) (AdmissionPolicy, error) {
	switch name {
	case "priority-edf", "priority", "edf":
		return NewPriorityEDF(tenants, shedFraction), nil
	case "weighted-fair", "wfq", "drr":
		return NewWeightedFair(tenants, WeightedFairConfig{Weights: weights, ShedFraction: shedFraction})
	case "fifo":
		return FIFO{}, nil
	}
	return nil, fmt.Errorf("fleet: unknown admission policy %q (want priority-edf, weighted-fair or fifo)", name)
}
