package report

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNormalize(t *testing.T) {
	norm := Normalize(map[string]float64{"fast": 2, "slow": 8, "mid": 4})
	if norm["fast"] != 1 {
		t.Errorf("fast = %g, want 1", norm["fast"])
	}
	if norm["slow"] != 0.25 || norm["mid"] != 0.5 {
		t.Errorf("norm = %v", norm)
	}
	if len(Normalize(nil)) != 0 {
		t.Error("empty input should give empty output")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(10, 2) != 5 {
		t.Error("Speedup(10,2) != 5")
	}
	if !math.IsNaN(Speedup(1, 0)) {
		t.Error("zero divisor should give NaN")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("GeoMean(2,8) = %g, want 4", g)
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Error("empty should be NaN")
	}
	if !math.IsNaN(GeoMean([]float64{1, -1})) {
		t.Error("negative should be NaN")
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %g", m)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("empty should be NaN")
	}
}

func TestTableWrite(t *testing.T) {
	tbl := &Table{Title: "demo", Header: []string{"a", "bb"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tbl.Write(&buf); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{"demo", "a", "bb", "333"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 10); got != "#####....." {
		t.Errorf("Bar(0.5,10) = %q", got)
	}
	if got := Bar(-1, 4); got != "...." {
		t.Errorf("Bar(-1,4) = %q", got)
	}
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2,4) = %q", got)
	}
}

func TestSortedKeys(t *testing.T) {
	keys := SortedKeys(map[string]float64{"b": 1, "a": 2, "c": 3})
	if strings.Join(keys, "") != "abc" {
		t.Errorf("keys = %v", keys)
	}
}

func TestFormatters(t *testing.T) {
	if FmtUS(1e-6) != "1.00us" {
		t.Errorf("FmtUS = %q", FmtUS(1e-6))
	}
	if FmtRatio(2.5) != "2.50x" {
		t.Errorf("FmtRatio = %q", FmtRatio(2.5))
	}
}

func TestTimeline(t *testing.T) {
	var buf bytes.Buffer
	starts := []float64{0, 0.5, 1}
	durs := []float64{1, 1, 0.5}
	lanes := []int32{0, 1, 0}
	if err := Timeline(&buf, "demo", starts, durs, lanes, 4, 20); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "SM0") || !strings.Contains(out, "SM1") {
		t.Errorf("timeline missing lanes:\n%s", out)
	}
	if !strings.Contains(out, "#") {
		t.Error("timeline has no bars")
	}
	if err := Timeline(&buf, "bad", starts, durs[:1], lanes, 4, 20); err == nil {
		t.Error("mismatched arrays accepted")
	}
	if err := Timeline(&buf, "empty", nil, nil, nil, 4, 20); err != nil {
		t.Errorf("empty timeline should be a no-op: %v", err)
	}
}
