// Package report formats experiment results: normalized-performance tables
// (the paper normalizes to the most performant system), geometric-mean
// speedups, ASCII bar charts and aligned tables for terminal output.
package report

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"text/tabwriter"
)

// Normalize converts times to normalized performance: best time = 1.0,
// everything else proportionally lower (the paper's Figures 9-11 convention).
func Normalize(times map[string]float64) map[string]float64 {
	best := math.Inf(1)
	for _, t := range times {
		if t > 0 && t < best {
			best = t
		}
	}
	out := make(map[string]float64, len(times))
	for k, t := range times {
		if t > 0 {
			out[k] = best / t
		}
	}
	return out
}

// Speedup returns how much faster b is than a (a/b).
func Speedup(a, b float64) float64 {
	if b <= 0 {
		return math.NaN()
	}
	return a / b
}

// GeoMean returns the geometric mean of positive values, NaN for empty input.
func GeoMean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(values)))
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range values {
		sum += v
	}
	return sum / float64(len(values))
}

// Table renders rows with aligned columns.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "\n== %s ==\n", t.Title); err != nil {
			return err
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	if len(t.Header) > 0 {
		fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
		sep := make([]string, len(t.Header))
		for i, h := range t.Header {
			sep[i] = strings.Repeat("-", len(h))
		}
		fmt.Fprintln(tw, strings.Join(sep, "\t"))
	}
	for _, row := range t.Rows {
		fmt.Fprintln(tw, strings.Join(row, "\t"))
	}
	return tw.Flush()
}

// Bar renders v in [0,1] as an ASCII bar of the given width.
func Bar(v float64, width int) string {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	n := int(v*float64(width) + 0.5)
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Timeline renders an ASCII Gantt chart of block intervals: one row per
// lane, '#' spans a block's residency. Intervals are in seconds; width is
// the chart width in characters.
func Timeline(w io.Writer, title string, starts, durations []float64, lanes []int32, maxLanes, width int) error {
	if len(starts) != len(durations) || len(starts) != len(lanes) {
		return fmt.Errorf("report: timeline arrays disagree: %d/%d/%d", len(starts), len(durations), len(lanes))
	}
	if len(starts) == 0 {
		return nil
	}
	end := 0.0
	for i := range starts {
		if e := starts[i] + durations[i]; e > end {
			end = e
		}
	}
	if end <= 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "\n== %s (0 .. %s) ==\n", title, FmtUS(end)); err != nil {
		return err
	}
	rows := make(map[int32][]rune)
	order := make([]int32, 0, maxLanes)
	for i := range starts {
		lane := lanes[i]
		row, ok := rows[lane]
		if !ok {
			if len(rows) >= maxLanes {
				continue
			}
			row = []rune(strings.Repeat(".", width))
			rows[lane] = row
			order = append(order, lane)
		}
		lo := int(starts[i] / end * float64(width))
		hi := int((starts[i] + durations[i]) / end * float64(width))
		if hi >= width {
			hi = width - 1
		}
		for c := lo; c <= hi; c++ {
			row[c] = '#'
		}
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	for _, lane := range order {
		if _, err := fmt.Fprintf(w, "SM%-4d %s\n", lane, string(rows[lane])); err != nil {
			return err
		}
	}
	return nil
}

// SortedKeys returns map keys in deterministic order.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FmtUS formats seconds as microseconds.
func FmtUS(sec float64) string { return fmt.Sprintf("%.2fus", sec*1e6) }

// FmtRatio formats a speedup ratio.
func FmtRatio(r float64) string { return fmt.Sprintf("%.2fx", r) }
