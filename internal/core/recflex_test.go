package core

import (
	"math/rand"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/tuner"
)

func coreModel(t *testing.T) ([]fusion.FeatureInfo, *datasynth.ModelConfig) {
	t.Helper()
	core := []datasynth.FeatureSpec{
		{Name: "oh4", Dim: 4, Rows: 2048, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "mh8", Dim: 8, Rows: 2048, PF: datasynth.Normal{Mu: 40, Sigma: 10}, Coverage: 1},
		{Name: "mh64", Dim: 64, Rows: 2048, PF: datasynth.Fixed{K: 60}, Coverage: 1},
	}
	cfg := &datasynth.ModelConfig{Name: "core", Seed: 88}
	for r := 0; r < 4; r++ {
		for _, s := range core {
			c := s
			c.Name = c.Name + string(rune('a'+r))
			cfg.Features = append(cfg.Features, c)
		}
	}
	features := make([]fusion.FeatureInfo, len(cfg.Features))
	for f := range features {
		features[f] = fusion.FeatureInfo{
			Name: cfg.Features[f].Name, Dim: cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows, Pool: embedding.PoolSum,
		}
	}
	return features, cfg
}

func tunedInstance(t *testing.T) (*RecFlex, *datasynth.ModelConfig) {
	t.Helper()
	features, cfg := coreModel(t)
	rf := New(gpusim.V100(), features)
	rng := rand.New(rand.NewSource(88))
	var batches []*embedding.Batch
	for i := 0; i < 2; i++ {
		b, err := datasynth.GenerateBatch(cfg, 128, rng)
		if err != nil {
			t.Fatal(err)
		}
		batches = append(batches, b)
	}
	if err := rf.Tune(batches, tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	return rf, cfg
}

func TestRecFlexLifecycle(t *testing.T) {
	rf, cfg := tunedInstance(t)
	if rf.Tuned() == nil {
		t.Fatal("tuned state missing")
	}
	if rf.Name() != "RecFlex" {
		t.Errorf("Name = %q", rf.Name())
	}
	if err := rf.Supports(rf.Features()); err != nil {
		t.Errorf("tuned instance should support its model: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	batch, err := datasynth.GenerateBatch(cfg, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	sec, err := rf.Measure(rf.Device(), rf.Features(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if sec <= 0 {
		t.Errorf("measured time %g", sec)
	}
}

func TestRecFlexNotTunedErrors(t *testing.T) {
	features, cfg := coreModel(t)
	rf := New(gpusim.V100(), features)
	if err := rf.Supports(features); err == nil {
		t.Error("untuned instance claims support")
	}
	rng := rand.New(rand.NewSource(9))
	batch, err := datasynth.GenerateBatch(cfg, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.CompileBatch(batch); err == nil {
		t.Error("CompileBatch before Tune accepted")
	}
	if _, err := rf.Measure(rf.Device(), features, batch); err == nil {
		t.Error("Measure before Tune accepted")
	}
}

func TestRecFlexWrongDeviceRejected(t *testing.T) {
	rf, cfg := tunedInstance(t)
	rng := rand.New(rand.NewSource(10))
	batch, err := datasynth.GenerateBatch(cfg, 32, rng)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rf.Measure(gpusim.A100(), rf.Features(), batch); err == nil {
		t.Error("measuring on a different device than tuned accepted")
	}
}

func TestRecFlexRunCorrectness(t *testing.T) {
	rf, cfg := tunedInstance(t)
	tables, err := datasynth.BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	batch, err := datasynth.GenerateBatch(cfg, 48, rng)
	if err != nil {
		t.Fatal(err)
	}
	outs, res, err := rf.Run(tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Error("simulated time must be positive")
	}
	want, err := fusion.ReferenceOutputs(rf.Features(), tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	for f := range want {
		for i := range want[f] {
			if outs[f][i] != want[f][i] {
				t.Fatalf("feature %d out[%d] = %g, want %g", f, i, outs[f][i], want[f][i])
			}
		}
	}
}

func TestShouldRetuneDetectsDrift(t *testing.T) {
	rf, cfg := tunedInstance(t)
	rng := rand.New(rand.NewSource(12))
	same, err := datasynth.GenerateBatch(cfg, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err := rf.ShouldRetune([]*embedding.Batch{same})
	if err != nil {
		t.Fatal(err)
	}
	if drifted {
		t.Error("same distribution flagged as drift")
	}
	// Shift the distribution: multiply every pooling factor by ~4.
	shiftCfg := &datasynth.ModelConfig{Name: "shift", Seed: cfg.Seed, Features: append([]datasynth.FeatureSpec(nil), cfg.Features...)}
	for i := range shiftCfg.Features {
		shiftCfg.Features[i].PF = datasynth.Fixed{K: 200}
	}
	shifted, err := datasynth.GenerateBatch(shiftCfg, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	drifted, err = rf.ShouldRetune([]*embedding.Batch{shifted})
	if err != nil {
		t.Fatal(err)
	}
	if !drifted {
		t.Error("4x pooling-factor shift not flagged as drift")
	}
}

func TestNewWithCandidates(t *testing.T) {
	features, _ := coreModel(t)
	cands := make([][]sched.Schedule, len(features))
	for f := range cands {
		cands[f] = []sched.Schedule{sched.SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1}}
	}
	rf, err := NewWithCandidates(gpusim.V100(), features, cands)
	if err != nil {
		t.Fatal(err)
	}
	if rf == nil {
		t.Fatal("nil instance")
	}
	if _, err := NewWithCandidates(gpusim.V100(), features, cands[:1]); err == nil {
		t.Error("mismatched candidate sets accepted")
	}
}
