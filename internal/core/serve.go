package core

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/trace"
)

// BatchSource supplies the input batch for a given request size. Serving
// callers typically back it with datasynth.BatchForSize (one canonical,
// deterministic batch per size) so every measurement of a size sees the
// same data.
type BatchSource func(size int) (*embedding.Batch, error)

// Service returns a concurrency-safe trace.ServiceFunc that measures the
// tuned fused kernel on batches from src, quantizing request sizes up to a
// multiple of quantum (0 or 1 disables quantization) and memoizing per
// quantized size. This is the bridge between the queueing layer and the
// kernel simulator: the serving engine's worker pool calls it from multiple
// goroutines.
func (r *RecFlex) Service(src BatchSource, quantum int) trace.ServiceFunc {
	return trace.MemoService(func(size int) (float64, error) {
		if quantum > 1 {
			size = (size + quantum - 1) / quantum * quantum
		}
		b, err := src(size)
		if err != nil {
			return 0, fmt.Errorf("core: batch for size %d: %w", size, err)
		}
		return r.Measure(r.dev, r.model.Features, b)
	})
}

// ServeTrace runs a request stream through the concurrent serving engine
// with this instance's fused kernel as the simulated GPU service — the
// serving entry point of the system. The instance must be tuned. quantum
// quantizes request sizes for measurement (see Service); cfg shapes the
// engine (workers, admission queue, deadlines, degradation policy).
func (r *RecFlex) ServeTrace(reqs []trace.Request, src BatchSource, quantum int, cfg trace.ServerConfig) (*trace.Report, error) {
	if r.Tuned() == nil {
		return nil, errNotTuned
	}
	srv, err := trace.NewServer(cfg, r.Service(src, quantum))
	if err != nil {
		return nil, err
	}
	return srv.Serve(reqs)
}
