package core

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/trace"
	"repro/internal/tuner"
)

// TestConcurrentWarmRetunesSharedMemo is the fleet-speed race stress: two
// supervised serving loops run concurrently, each drifting and re-tuning with
// warm starts against ONE shared tuner.Memo. Under -race this exercises the
// memo's singleflight from genuinely concurrent Tune calls. The pins:
//
//   - both concurrent runs produce exactly the report a serial cold-cache
//     (no memo) run produces — a shared cache never changes selection, and a
//     torn or cross-contaminated entry would surface as a diverged report or
//     a different tuned latency;
//   - the shared memo actually deduplicates across the models (hits > 0);
//   - generation stamps stay monotone within each run.
func TestConcurrentWarmRetunesSharedMemo(t *testing.T) {
	rf, reqs, src, opts := continuousFixture(t)
	opts.WarmStart = true
	// Keep the per-tune cost down — race-mode simulation is slow and this
	// test runs three full serving loops. The equality pin compares against
	// a cold-cache run with these same options, so pruning stays valid.
	opts.Tune.Prune = true
	opts.Tune.Occupancies = []int{2, 4}
	opts.RetuneBatches = 2

	// Cold-cache reference: the same warm-started loop with no memo at all.
	ref := rf.Clone()
	refRep, err := ref.ServeContinuous(reqs, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	refStr := fmt.Sprintf("%+v", refRep)
	refLat := ref.Tuned().Latency

	memo := tuner.NewMemo()
	shared := opts
	shared.Tune.Memo = memo

	const models = 2
	lives := make([]*RecFlex, models)
	reports := make([]*trace.Report, models)
	errs := make([]error, models)
	var wg sync.WaitGroup
	for i := 0; i < models; i++ {
		lives[i] = rf.Clone()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			reports[i], errs[i] = lives[i].ServeContinuous(reqs, src, shared)
		}(i)
	}
	wg.Wait()

	for i := 0; i < models; i++ {
		if errs[i] != nil {
			t.Fatalf("model %d: %v", i, errs[i])
		}
		if got := fmt.Sprintf("%+v", reports[i]); got != refStr {
			t.Errorf("model %d diverged from the cold-cache run:\n%s\n---\n%s", i, got, refStr)
		}
		if lat := lives[i].Tuned().Latency; math.Float64bits(lat) != math.Float64bits(refLat) {
			t.Errorf("model %d adopted latency %g, want cold-cache %g exactly", i, lat, refLat)
		}
		prev := -1
		for j, g := range reports[i].Generations {
			if g < prev {
				t.Fatalf("model %d: generation stamps not monotone at %d: %d -> %d", i, j, prev, g)
			}
			prev = g
		}
		if len(reports[i].Metrics.Swaps) == 0 {
			t.Fatalf("model %d never re-tuned; the stress exercised nothing", i)
		}
	}

	// Two identical models tuning the same drifted window must share work.
	hits, misses := memo.Stats()
	if misses == 0 || hits == 0 {
		t.Errorf("shared memo hits=%d misses=%d, want both > 0 across concurrent re-tunes", hits, misses)
	}
}
