package core

import (
	"fmt"
	"math"

	"repro/internal/embedding"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// TimedBatchSource supplies the input batch for a request of the given size
// arriving at virtual time t. Drifting workloads back it with
// datasynth.DriftSchedule.BatchForSize, so the batch a size maps to changes
// at the drift steps; time-invariant callers can ignore t.
type TimedBatchSource func(t float64, size int) (*embedding.Batch, error)

// TimedService returns a concurrency-safe trace.TimedServiceFunc measuring
// the tuned fused kernel on batches from src, quantizing request sizes up to
// a multiple of quantum (0 or 1 disables quantization) and memoizing per
// (drift phase, quantized size). phaseOf collapses virtual time onto the
// workload's drift phases (datasynth.DriftSchedule.PhaseStart); nil means
// the workload is time-invariant.
//
// The returned function binds this instance's schedule set at call time
// through r.Measure — but a continuous serving loop must bind it per
// generation: each generation's service is built from its own (immutable
// after tuning) instance, so in-flight requests keep their schedules across
// a hot-swap.
func (r *RecFlex) TimedService(src TimedBatchSource, quantum int, phaseOf func(float64) float64) trace.TimedServiceFunc {
	return trace.MemoTimedService(func(t float64, size int) (float64, error) {
		if quantum > 1 {
			size = (size + quantum - 1) / quantum * quantum
		}
		b, err := src(t, size)
		if err != nil {
			return 0, fmt.Errorf("core: batch for size %d at t=%g: %w", size, t, err)
		}
		return r.Measure(r.dev, r.model.Features, b)
	}, phaseOf)
}

// ContinuousOptions shapes RecFlex.ServeContinuous.
type ContinuousOptions struct {
	// Supervisor shapes the continuous serving loop: the engine, window,
	// check cadence, tune duration, cooldown — and the canary guard
	// (CanaryWindow / CanaryDuration for the window length, RollbackMargin
	// for the tolerated degradation). With the guard enabled every hot-swap
	// is a revocable promotion: a re-tune the canary measures worse than the
	// outgoing generation is rolled back and the instance that was live
	// before the swap stays authoritative.
	Supervisor trace.SupervisorConfig
	// Quantum quantizes request sizes for measurement (see TimedService).
	Quantum int
	// PhaseOf collapses virtual time onto drift phases for measurement
	// memoization; nil means time-invariant.
	PhaseOf func(t float64) float64
	// Tune configures each background re-tune's schedule search. Setting
	// Tune.Memo to a shared tuner.NewMemo() carries simulation results
	// across generations (and across models, when several serving loops
	// share one cache): a re-tune after a partial drift re-simulates only
	// what actually changed.
	Tune tuner.Options
	// RetuneBatches caps the distinct window batches a re-tune samples
	// (most recent first); 0 means 4.
	RetuneBatches int
	// WarmStart seeds every background re-tune with the outgoing
	// generation's tuning result (tuner.Options.Warm): the incumbent's
	// candidate choices are protected from pruning and its occupancy is
	// measured first so worse occupancies can be abandoned early. The
	// selected schedule set is unchanged — warm-starting only cuts the
	// re-tune's wall time (see trace.Metrics.TuneWall).
	WarmStart bool
}

// retuneBatchCap returns the effective cap on re-tune history batches.
func (o *ContinuousOptions) retuneBatchCap() int {
	if o.RetuneBatches == 0 {
		return 4
	}
	return o.RetuneBatches
}

// windowBatches materializes the batches behind a supervisor window:
// deduplicated by (drift phase, quantized size), newest first, capped at
// limit (0 = no cap). Deduplication matters because TimedService memoizes on
// exactly that key — distinct keys are the distinct batches the window saw.
func (o *ContinuousOptions) windowBatches(src TimedBatchSource, win []trace.WindowEntry, limit int) ([]*embedding.Batch, error) {
	type key struct {
		phase float64
		size  int
	}
	seen := make(map[key]bool)
	var out []*embedding.Batch
	for i := len(win) - 1; i >= 0; i-- {
		size := win[i].Size
		if o.Quantum > 1 {
			size = (size + o.Quantum - 1) / o.Quantum * o.Quantum
		}
		k := key{size: size}
		if o.PhaseOf != nil {
			k.phase = o.PhaseOf(win[i].Time)
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		b, err := src(win[i].Time, size)
		if err != nil {
			return nil, fmt.Errorf("core: window batch for size %d at t=%g: %w", size, win[i].Time, err)
		}
		out = append(out, b)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("core: empty supervisor window")
	}
	return out, nil
}

// ServeFrozen replays the same continuous loop with drift control disabled:
// every request is served by this instance's current schedule set, whatever
// the workload does. It is the stale-schedule baseline a ServeContinuous run
// is compared against — same engine, same trace, same virtual clock, only
// the schedules differ.
func (r *RecFlex) ServeFrozen(reqs []trace.Request, src TimedBatchSource, opts ContinuousOptions) (*trace.Report, error) {
	if r.Tuned() == nil {
		return nil, errNotTuned
	}
	never := func([]trace.WindowEntry) (bool, error) { return false, nil }
	frozen := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return nil, fmt.Errorf("core: frozen serving loop must not re-tune")
	}
	sv, err := trace.NewSupervisor(opts.Supervisor, r.TimedService(src, opts.Quantum, opts.PhaseOf), never, frozen)
	if err != nil {
		return nil, err
	}
	return sv.Run(reqs)
}

// PostSwapSplit compares a supervised run against its frozen baseline on the
// post-swap slice: the mean served sojourn over requests admitted on a
// re-tuned generation (fresh.Generations[i] > 0), and over the exact same
// request indices of the stale run. n is the number of requests compared; it
// is 0 when the supervised run never swapped (or every post-swap request was
// shed in either run), in which case both means are NaN.
func PostSwapSplit(fresh, stale *trace.Report) (freshMean, staleMean float64, n int) {
	var fs, ss float64
	for i, g := range fresh.Generations {
		if g == 0 || i >= len(stale.Sojourn) ||
			math.IsNaN(fresh.Sojourn[i]) || math.IsNaN(stale.Sojourn[i]) {
			continue
		}
		fs += fresh.Sojourn[i]
		ss += stale.Sojourn[i]
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN(), 0
	}
	return fs / float64(n), ss / float64(n), n
}

// ServeContinuous runs the full continuous serving loop on this instance:
// the request stream is replayed through a trace.Supervisor whose drift
// detector is ShouldRetune over the sliding window's batches and whose
// retuner runs the two-stage schedule search on the recent window, compiling
// a fresh schedule set that the supervisor hot-swaps into the loop while
// serving continues on the remaining workers. Each generation is an
// independent immutable instance, so in-flight requests finish on the
// schedules they were admitted under; when the run ends the receiver adopts
// the final generation's tuning (the production hot-swap's last commit).
//
// With the canary guard on (Supervisor.CanaryWindow / CanaryDuration), each
// promotion is provisional: a re-tune the canary measures worse than the
// pre-swap baseline by more than Supervisor.RollbackMargin is rolled back,
// the previously live instance is reinstated for drift detection and final
// adoption, and the verdict lands in the report's Metrics (Rollbacks,
// SwapEvent.Rollback/CanaryMean).
//
// The instance must be tuned; determinism of the trace, the drift source and
// the tuner makes the whole run reproducible for a fixed seed.
func (r *RecFlex) ServeContinuous(reqs []trace.Request, src TimedBatchSource, opts ContinuousOptions) (*trace.Report, error) {
	sv, commit, err := r.continuousSupervisor(src, opts)
	if err != nil {
		return nil, err
	}
	rep, err := sv.Run(reqs)
	if err != nil {
		return nil, err
	}
	commit()
	return rep, nil
}

// continuousSupervisor builds the continuous-serving supervisor over this
// instance — drift detection via ShouldRetune on the window's batches,
// background re-tunes via the two-stage schedule search, canary rollbacks
// reinstating the right instance — together with the commit closure that
// adopts the final live generation's tuning into the receiver. The caller
// runs the supervisor (directly via Run, or on a shared fleet pool) and
// calls commit after a successful run. Both ServeContinuous and ServeFleet
// are thin wrappers around this.
func (r *RecFlex) continuousSupervisor(src TimedBatchSource, opts ContinuousOptions) (*trace.Supervisor, func(), error) {
	if r.Tuned() == nil {
		return nil, nil, errNotTuned
	}
	// cur tracks the live generation's instance: the drift detector compares
	// the window against the most recently installed tuning profile, not the
	// original one, so one shift triggers one re-tune rather than an endless
	// train of them. instances maps generation ids to their tuned instances
	// so a canary rollback can reinstate the right one — the rollback
	// generation reuses the reinstated instance, matching the supervisor's
	// service reuse.
	cur := r
	instances := map[int]*RecFlex{0: r}
	detect := func(win []trace.WindowEntry) (bool, error) {
		batches, err := opts.windowBatches(src, win, 0)
		if err != nil {
			return false, err
		}
		return cur.ShouldRetune(batches)
	}
	retune := func(gen int, win []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		batches, err := opts.windowBatches(src, win, opts.retuneBatchCap())
		if err != nil {
			return nil, err
		}
		topts := opts.Tune
		if opts.WarmStart {
			// Seed the search with the generation being replaced — cur, not
			// r: after a swap (or rollback) the incumbent is whatever is
			// live now, and its choices are what the next tune must beat.
			topts.Warm = tuner.WarmFrom(cur.Tuned())
		}
		fresh := &RecFlex{dev: r.dev, model: r.model}
		if err := fresh.Tune(batches, topts); err != nil {
			return nil, fmt.Errorf("core: background tune for generation %d: %w", gen, err)
		}
		cur = fresh
		instances[gen] = fresh
		return fresh.TimedService(src, opts.Quantum, opts.PhaseOf), nil
	}
	sv, err := trace.NewSupervisor(opts.Supervisor, r.TimedService(src, opts.Quantum, opts.PhaseOf), detect, retune)
	if err != nil {
		return nil, nil, err
	}
	sv.OnRollback(func(rollbackGen, reinstated int) {
		// The canary reverted the latest promotion: serving is back on the
		// reinstated generation's schedules, so that instance is what the
		// drift detector must compare against and what the receiver adopts
		// if the run ends here.
		cur = instances[reinstated]
		instances[rollbackGen] = cur
	})
	commit := func() {
		if cur != r {
			r.adoptFrom(cur)
		}
	}
	return sv, commit, nil
}
