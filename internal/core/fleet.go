package core

import (
	"fmt"

	"repro/internal/fleet"
)

// FleetModel describes one model in a fleet serve: a tuned RecFlex instance,
// the batch source its measurements draw from, and its continuous-serving
// options. A Frozen model serves its current schedule set forever (no drift
// control — the stale-schedule baseline); otherwise the model runs the full
// continuous loop of ServeContinuous — drift detection, background re-tunes,
// hot-swaps, canary rollbacks — while sharing the pool's workers with its
// neighbors.
type FleetModel struct {
	// Name labels the model in fleet metrics and reports.
	Name string
	// Rec is the tuned instance. After a successful ServeFleet a supervised
	// (non-frozen) model adopts its final generation's tuning, exactly as
	// ServeContinuous would.
	Rec *RecFlex
	// Source supplies measurement batches (see TimedBatchSource).
	Source TimedBatchSource
	// Opts shapes the model's continuous loop. Opts.Supervisor.Server is
	// only validated, not used for capacity — the fleet pool's shared queue
	// governs serving; the per-model supervisor contributes its window,
	// check cadence, tune duration, cooldown and canary settings.
	Opts ContinuousOptions
	// Frozen disables drift control for this model.
	Frozen bool
	// Reserve is the model's exclusive worker floor under packed/spread
	// placement (fleet.Model.Reserve): that many workers serve only this
	// model, host its background tunes, and are never drained by the
	// autoscaler.
	Reserve int
	// ClassScale maps device classes to service-time multipliers
	// (fleet.Model.ClassScale); empty means every class runs at 1x.
	ClassScale []float64
}

// FleetResult is the outcome of one fleet serve.
type FleetResult struct {
	// Report is the pool's full report (per-request outcomes, pool-wide and
	// per-model/per-tenant metrics, per-model trace reports with swap
	// histories).
	Report *fleet.Report
	// Interference holds the per-model sojourn-inflation ratios versus each
	// model served alone on its initially assigned workers (NaN for a model
	// that served nothing). See fleet.Pool.Interference.
	Interference []float64
}

// ServeFleet replays one multi-model, multi-tenant request stream over a
// shared simulated GPU pool: the core-level bridge to internal/fleet. Each
// non-frozen model runs its own continuous serving loop (drift detection,
// background re-tunes booked on its placed workers, hot-swaps, canary
// rollbacks) with model-local generations, while the pool arbitrates
// capacity through cfg's placement strategy and admission policy — including
// weighted-fair (deficit round-robin) dispatch between priority classes when
// cfg.Admission is a fleet.WeightedFair. cfg's RebalanceEvery/Rebalance pair
// enables periodic repartitioning (fleet.NewRebalanceByLoad consumes the
// recorded load history), and cfg.Queue's DegradeSplitTail with SplitCap
// splits over-cap tail requests inside the shared pool. After a successful
// run each supervised model's instance adopts its final generation's tuning,
// matching ServeContinuous's last-commit semantics.
//
// Determinism carries through from the parts: a fixed trace, drift sources
// and tuner seeds reproduce the identical FleetResult.
func ServeFleet(cfg fleet.Config, models []FleetModel, tenants []fleet.TenantSpec, reqs []fleet.Request) (*FleetResult, error) {
	pool, commits, err := BuildFleetPool(cfg, models, tenants)
	if err != nil {
		return nil, err
	}
	rep, err := pool.Serve(reqs)
	if err != nil {
		return nil, err
	}
	ratios, err := pool.Interference(reqs, rep)
	if err != nil {
		return nil, err
	}
	for _, commit := range commits {
		commit()
	}
	return &FleetResult{Report: rep, Interference: ratios}, nil
}

// BuildFleetPool converts core-level FleetModels into a ready fleet.Pool —
// the step ServeFleet runs before its batch replay, exported so live-serving
// front doors (internal/gateway, recflex-serve -listen) can drive the same
// pool incrementally. The returned commit hooks belong to supervised
// (non-frozen) models; call each after a successful serving run to make the
// model's RecFlex instance adopt its final generation's tuning, exactly as
// ServeFleet does.
func BuildFleetPool(cfg fleet.Config, models []FleetModel, tenants []fleet.TenantSpec) (*fleet.Pool, []func(), error) {
	fm := make([]fleet.Model, len(models))
	commits := make([]func(), 0, len(models))
	for i := range models {
		m := &models[i]
		if m.Rec == nil {
			return nil, nil, fmt.Errorf("core: fleet model %s has no RecFlex instance", m.Name)
		}
		if m.Frozen {
			if m.Rec.Tuned() == nil {
				return nil, nil, errNotTuned
			}
			fm[i] = fleet.Model{
				Name:       m.Name,
				Service:    m.Rec.TimedService(m.Source, m.Opts.Quantum, m.Opts.PhaseOf),
				Reserve:    m.Reserve,
				ClassScale: m.ClassScale,
			}
			continue
		}
		sv, commit, err := m.Rec.continuousSupervisor(m.Source, m.Opts)
		if err != nil {
			return nil, nil, fmt.Errorf("core: fleet model %s: %w", m.Name, err)
		}
		fm[i] = fleet.Model{Name: m.Name, Supervisor: sv, Reserve: m.Reserve, ClassScale: m.ClassScale}
		commits = append(commits, commit)
	}
	pool, err := fleet.NewPool(cfg, fm, tenants)
	if err != nil {
		return nil, nil, err
	}
	return pool, commits, nil
}
