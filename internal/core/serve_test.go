package core_test

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func tunedInstance(t *testing.T) (*core.RecFlex, *datasynth.ModelConfig) {
	t.Helper()
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelB(), 40)
	features := experiments.Features(cfg)
	rng := rand.New(rand.NewSource(3))
	var hist []*embedding.Batch
	for i := 0; i < 2; i++ {
		b, err := datasynth.GenerateBatch(cfg, 256, rng)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(hist, tuner.Options{Occupancies: []int{2, 4}, Parallelism: 4}); err != nil {
		t.Fatal(err)
	}
	return rf, cfg
}

// ServeTrace with one worker and no deadline must agree exactly with the
// closed-form trace.Serve over the same memoized service.
func TestServeTraceMatchesClosedForm(t *testing.T) {
	rf, cfg := tunedInstance(t)
	src := func(size int) (*embedding.Batch, error) { return datasynth.BatchForSize(cfg, size) }
	reqs, err := trace.Generate(60, trace.GeneratorConfig{
		QPS: 2000, MaxBatch: 512, TailProb: 0.05, TailSize: 2560, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rf.ServeTrace(reqs, src, 64, trace.ServerConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := trace.Serve(reqs, rf.Service(src, 64))
	if err != nil {
		t.Fatal(err)
	}
	for i := range reqs {
		if rep.Sojourn[i] != want.Sojourn[i] {
			t.Fatalf("sojourn %d: engine %g, closed form %g", i, rep.Sojourn[i], want.Sojourn[i])
		}
	}
	if rep.Metrics.Served != len(reqs) || rep.Metrics.Shed() != 0 {
		t.Errorf("counters: %s", rep.Metrics)
	}
}

// Multi-worker serving with deadlines and the split-tail policy runs
// end-to-end on the tuned kernel and keeps its accounting consistent.
func TestServeTraceConcurrentPolicies(t *testing.T) {
	rf, cfg := tunedInstance(t)
	src := func(size int) (*embedding.Batch, error) { return datasynth.BatchForSize(cfg, size) }
	reqs, err := trace.Generate(80, trace.GeneratorConfig{
		QPS: 30000, MaxBatch: 512, TailProb: 0.1, TailSize: 2560, Seed: 13,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rf.ServeTrace(reqs, src, 64, trace.ServerConfig{
		Workers:  2,
		Deadline: 400e-6, // tight enough to pressure the long tail
		SplitCap: 512,
		Policy:   trace.DegradeSplitTail,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if m.Served+m.Shed() != len(reqs) {
		t.Fatalf("accounting: served %d + shed %d != %d", m.Served, m.Shed(), len(reqs))
	}
	for i, r := range reqs {
		if r.Size <= 512 && rep.Outcomes[i].Shed() {
			t.Fatalf("non-tail request %d (size %d) shed under default policy", i, r.Size)
		}
		if !rep.Outcomes[i].Shed() && (math.IsNaN(rep.Sojourn[i]) || rep.Sojourn[i] <= 0) {
			t.Fatalf("served request %d has sojourn %g", i, rep.Sojourn[i])
		}
	}
	if len(m.Workers) != 2 {
		t.Fatalf("worker stats %v", m.Workers)
	}
	for g, w := range m.Workers {
		if w.Utilization < 0 || w.Utilization > 1 {
			t.Errorf("worker %d utilization %g", g, w.Utilization)
		}
	}
}

// ServeTrace before tuning must fail cleanly.
func TestServeTraceRequiresTuning(t *testing.T) {
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelB(), 40)
	rf := core.New(dev, experiments.Features(cfg))
	src := func(size int) (*embedding.Batch, error) { return datasynth.BatchForSize(cfg, size) }
	if _, err := rf.ServeTrace([]trace.Request{{Arrival: 0, Size: 64}}, src, 64, trace.ServerConfig{}); err == nil {
		t.Error("untuned ServeTrace accepted")
	}
}
