package core

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// continuousFixture builds the shared drifting-trace scenario: a tuned
// instance, a Poisson trace whose pooling factors scale 4x a third of the
// way in, and the continuous-serving options used across these tests.
func continuousFixture(t *testing.T) (*RecFlex, []trace.Request, TimedBatchSource, ContinuousOptions) {
	t.Helper()
	rf, cfg := tunedInstance(t)
	reqs, err := trace.Generate(96, trace.GeneratorConfig{
		QPS: 40, MaxBatch: 512, Seed: 4242,
	})
	if err != nil {
		t.Fatal(err)
	}
	drift := datasynth.StepDrift(reqs[len(reqs)/3].Arrival, 4)
	src := func(tt float64, size int) (*embedding.Batch, error) {
		return drift.BatchForSize(cfg, tt, size)
	}
	opts := ContinuousOptions{
		Supervisor: trace.SupervisorConfig{
			Server:     trace.ServerConfig{Workers: 2},
			Window:     12,
			CheckEvery: 6,
			MaxRetunes: 1,
		},
		Quantum: 64,
		PhaseOf: drift.PhaseStart,
		Tune:    tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 4},
	}
	return rf, reqs, src, opts
}

// The end-to-end acceptance path of the continuous serving loop: the
// supervisor notices the drift, re-tunes in the background without pausing
// admission, hot-swaps, and the post-swap latency beats the frozen baseline.
func TestServeContinuousEndToEnd(t *testing.T) {
	rf, reqs, src, opts := continuousFixture(t)

	live := rf.Clone()
	rep, err := live.ServeContinuous(reqs, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if len(m.Swaps) != 1 || m.Generation != 1 {
		t.Fatalf("want exactly one hot-swap, got %d (generation %d)", len(m.Swaps), m.Generation)
	}
	s := m.Swaps[0]
	driftAt := reqs[len(reqs)/3].Arrival
	if s.Detected < driftAt {
		t.Errorf("drift detected at %g, before it started at %g", s.Detected, driftAt)
	}
	if !(s.Detected <= s.Start && s.Start < s.Swapped) {
		t.Errorf("swap timeline out of order: detected %g, tune start %g, swapped %g",
			s.Detected, s.Start, s.Swapped)
	}
	if m.TuneBusy <= 0 {
		t.Errorf("background tune occupied no worker time")
	}
	if m.Served != len(reqs) || m.Shed() != 0 || m.Timeouts != 0 {
		t.Errorf("requests lost during hot-swap: %s", m)
	}
	// Admission never pauses: generation stamps are monotone 0...01...1 and
	// both generations actually served traffic.
	swapped := 0
	for i, g := range rep.Generations {
		if i > 0 && g < rep.Generations[i-1] {
			t.Fatalf("generation stamps not monotone at %d: %v -> %v", i, rep.Generations[i-1], g)
		}
		if g == 1 {
			swapped++
		}
	}
	if swapped == 0 || swapped == len(reqs) {
		t.Fatalf("swap did not split the trace: %d/%d requests on generation 1", swapped, len(reqs))
	}
	// The hot-swap survives the run: the live instance adopted the fresh
	// tuning, while the original (the frozen baseline) kept its own.
	if live.Tuned() == rf.Tuned() {
		t.Error("live instance still serves the stale schedule set after the swap")
	}

	stale, err := rf.ServeFrozen(reqs, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	sm := stale.Metrics
	if sm.Generation != 0 || len(sm.Swaps) != 0 || sm.TuneBusy != 0 {
		t.Fatalf("frozen baseline re-tuned: generation %d, %d swaps", sm.Generation, len(sm.Swaps))
	}
	freshMean, staleMean, n := PostSwapSplit(rep, stale)
	if n != swapped {
		t.Fatalf("PostSwapSplit covered %d requests, want %d", n, swapped)
	}
	if math.IsNaN(freshMean) || math.IsNaN(staleMean) {
		t.Fatalf("post-swap means undefined: fresh %g, stale %g", freshMean, staleMean)
	}
	if freshMean > staleMean {
		t.Errorf("post-swap latency did not recover: swapped %gus vs stale %gus",
			freshMean*1e6, staleMean*1e6)
	}
	t.Logf("post-swap over %d requests: stale %.2fus vs swapped %.2fus (%.3fx)",
		n, staleMean*1e6, freshMean*1e6, staleMean/freshMean)
}

// Two identically-seeded drifting runs must be bit-identical — the whole
// loop (admission, windowing, detection, background tune, swap timing,
// metrics) is a pure function of (instance, trace, options). fmt's %+v
// round-trips every distinct float64 and prints NaN stably, so string
// equality is exact value equality up to NaN==NaN (swap means can be NaN
// when a swap lands at a trace edge).
func TestServeContinuousDeterministicSeed(t *testing.T) {
	rf, reqs, src, opts := continuousFixture(t)

	run := func() string {
		rep, err := rf.Clone().ServeContinuous(reqs, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rep)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("identically-seeded runs diverged:\n%s\n---\n%s", a, b)
	}

	frozen := func() string {
		rep, err := rf.ServeFrozen(reqs, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rep)
	}
	if fa, fb := frozen(), frozen(); fa != fb {
		t.Fatalf("identically-seeded frozen runs diverged:\n%s\n---\n%s", fa, fb)
	}
}

// The guarded loop on a clean drift: the canary confirms the genuine
// re-tune instead of rolling it back, records its verdict in the swap event,
// and the receiver still adopts the fresh tuning. Guarded runs stay
// deterministic.
func TestServeContinuousCanaryConfirmsRetune(t *testing.T) {
	rf, reqs, src, opts := continuousFixture(t)
	opts.Supervisor.CanaryWindow = 8
	opts.Supervisor.RollbackMargin = 0.5

	live := rf.Clone()
	rep, err := live.ServeContinuous(reqs, src, opts)
	if err != nil {
		t.Fatal(err)
	}
	m := rep.Metrics
	if len(m.Swaps) != 1 || m.Generation != 1 || m.Rollbacks != 0 {
		t.Fatalf("want one confirmed promotion, got %d swaps generation %d rollbacks %d",
			len(m.Swaps), m.Generation, m.Rollbacks)
	}
	s := m.Swaps[0]
	if s.Rollback {
		t.Fatalf("clean drift rolled back: %+v", s)
	}
	if s.CanaryMean <= 0 || s.BaselineMean <= 0 {
		t.Fatalf("canary verdict not recorded: canary %g baseline %g", s.CanaryMean, s.BaselineMean)
	}
	if s.CanaryMean > s.BaselineMean*(1+opts.Supervisor.RollbackMargin) {
		t.Errorf("canary %g vs baseline %g exceeds the margin yet no rollback happened",
			s.CanaryMean, s.BaselineMean)
	}
	if live.Tuned() == rf.Tuned() {
		t.Error("confirmed promotion not adopted: live instance still on the stale schedule set")
	}

	run := func() string {
		rep, err := rf.Clone().ServeContinuous(reqs, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return fmt.Sprintf("%+v", rep)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("identically-seeded guarded runs diverged:\n%s\n---\n%s", a, b)
	}
}

func TestServeContinuousErrors(t *testing.T) {
	features, cfg := coreModel(t)
	rf := New(gpusim.V100(), features)
	src := func(tt float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	reqs := []trace.Request{{Arrival: 0, Size: 64}}
	if _, err := rf.ServeContinuous(reqs, src, ContinuousOptions{}); err == nil {
		t.Error("ServeContinuous accepted an untuned instance")
	}
	if _, err := rf.ServeFrozen(reqs, src, ContinuousOptions{}); err == nil {
		t.Error("ServeFrozen accepted an untuned instance")
	}
}

func TestPostSwapSplit(t *testing.T) {
	mk := func(soj []float64, gens []int) *trace.Report {
		rep := &trace.Report{Generations: gens}
		rep.Sojourn = soj
		return rep
	}
	fresh := mk([]float64{1, 2, 3, 4}, []int{0, 0, 1, 1})
	stale := mk([]float64{1, 2, 5, 7}, []int{0, 0, 0, 0})
	fm, sm, n := PostSwapSplit(fresh, stale)
	if n != 2 || fm != 3.5 || sm != 6 {
		t.Errorf("split = (%g, %g, %d), want (3.5, 6, 2)", fm, sm, n)
	}
	// No post-swap requests: undefined means, zero count.
	fm, sm, n = PostSwapSplit(mk([]float64{1}, []int{0}), mk([]float64{2}, []int{0}))
	if n != 0 || !math.IsNaN(fm) || !math.IsNaN(sm) {
		t.Errorf("empty split = (%g, %g, %d), want (NaN, NaN, 0)", fm, sm, n)
	}
}
