package core

import (
	"math"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// The fleet bridge end-to-end: a drifting supervised model and a frozen
// neighbor share two simulated GPUs under priority admission. The supervised
// model detects its drift, re-tunes on shared capacity, hot-swaps and adopts
// the fresh tuning; the frozen model stays on generation 0; the interference
// accounting covers both.
func TestServeFleetEndToEnd(t *testing.T) {
	rf, cfg := tunedInstance(t)
	a, b := rf.Clone(), rf.Clone()

	reqsA, err := trace.Generate(96, trace.GeneratorConfig{QPS: 40, MaxBatch: 512, Seed: 4242})
	if err != nil {
		t.Fatal(err)
	}
	reqsB, err := trace.Generate(64, trace.GeneratorConfig{QPS: 25, MaxBatch: 256, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	drift := datasynth.StepDrift(reqsA[len(reqsA)/3].Arrival, 4)
	driftSrc := func(tt float64, size int) (*embedding.Batch, error) {
		return drift.BatchForSize(cfg, tt, size)
	}
	staticSrc := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	opts := ContinuousOptions{
		Supervisor: trace.SupervisorConfig{
			Window:     12,
			CheckEvery: 6,
			MaxRetunes: 1,
		},
		Quantum: 64,
		PhaseOf: drift.PhaseStart,
		Tune:    tuner.Options{Occupancies: []int{2, 4, 8}, Parallelism: 4},
	}
	models := []FleetModel{
		{Name: "drifting", Rec: a, Source: driftSrc, Opts: opts},
		{Name: "steady", Rec: b, Source: staticSrc, Opts: ContinuousOptions{Quantum: 64}, Frozen: true},
	}
	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0},
	}
	stream := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: reqsA},
		fleet.Stream{Model: 1, Tenant: 1, Reqs: reqsB},
	)

	res, err := ServeFleet(fleet.Config{
		Queue: trace.QueuePolicy{Workers: 2},
	}, models, tenants, stream)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report

	if got := rep.Metrics.Served + rep.Metrics.Shed(); got != len(stream) {
		t.Fatalf("lost requests: served+shed = %d of %d", got, len(stream))
	}
	ma := rep.ModelReports[0].Metrics
	if ma.Generation != 1 || len(ma.Swaps) != 1 {
		t.Fatalf("drifting model: generation %d, %d swaps, want 1/1", ma.Generation, len(ma.Swaps))
	}
	if ma.TuneBusy <= 0 {
		t.Error("background tune occupied no pool worker time")
	}
	mb := rep.ModelReports[1].Metrics
	if mb.Generation != 0 || len(mb.Swaps) != 0 || mb.TuneBusy != 0 {
		t.Fatalf("frozen model re-tuned: generation %d, %d swaps", mb.Generation, len(mb.Swaps))
	}
	if a.Tuned() == rf.Tuned() {
		t.Error("supervised model did not adopt the fresh tuning after the swap")
	}
	if b.Tuned() != rf.Tuned() {
		t.Error("frozen model's tuning changed")
	}
	if len(res.Interference) != 2 {
		t.Fatalf("interference for %d models, want 2", len(res.Interference))
	}
	for m, r := range res.Interference {
		if math.IsNaN(r) || r < 0.99 {
			t.Errorf("model %d interference %g, want a finite ratio >= 1", m, r)
		}
	}
}

func TestServeFleetErrors(t *testing.T) {
	features, cfg := coreModel(t)
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	untuned := New(gpusim.V100(), features)
	tenants := []fleet.TenantSpec{{Name: "t"}}
	reqs := []fleet.Request{{Arrival: 0, Size: 64}}
	queue := fleet.Config{Queue: trace.QueuePolicy{Workers: 1}}

	if _, err := ServeFleet(queue, []FleetModel{{Name: "m", Rec: untuned, Source: src}}, tenants, reqs); err == nil {
		t.Error("ServeFleet accepted an untuned supervised model")
	}
	if _, err := ServeFleet(queue, []FleetModel{{Name: "m", Rec: untuned, Source: src, Frozen: true}}, tenants, reqs); err == nil {
		t.Error("ServeFleet accepted an untuned frozen model")
	}
	if _, err := ServeFleet(queue, []FleetModel{{Name: "m", Source: src}}, tenants, reqs); err == nil {
		t.Error("ServeFleet accepted a model without an instance")
	}
}
