package core

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/gpusim"
)

func TestSaveLoadTunedRoundTrip(t *testing.T) {
	rf, cfg := tunedInstance(t)
	path := filepath.Join(t.TempDir(), "tuned.json")
	if err := rf.SaveTuned(path); err != nil {
		t.Fatal(err)
	}

	// Fresh instance: load instead of tuning.
	fresh := New(gpusim.V100(), rf.Features())
	if err := fresh.LoadTuned(path); err != nil {
		t.Fatal(err)
	}
	got, want := fresh.Tuned(), rf.Tuned()
	if got.Occupancy != want.Occupancy {
		t.Errorf("occupancy %d, want %d", got.Occupancy, want.Occupancy)
	}
	for f := range want.Choices {
		if got.Choices[f].Name() != want.Choices[f].Name() {
			t.Errorf("feature %d: %s, want %s", f, got.Choices[f].Name(), want.Choices[f].Name())
		}
	}

	// The loaded instance must produce identical kernels.
	rng := rand.New(rand.NewSource(5))
	batch, err := datasynth.GenerateBatch(cfg, 64, rng)
	if err != nil {
		t.Fatal(err)
	}
	a, err := rf.Measure(rf.Device(), rf.Features(), batch)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fresh.Measure(fresh.Device(), fresh.Features(), batch)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("loaded instance measures %g, tuned %g", b, a)
	}

	// Drift-detection state also travels: a same-distribution batch must
	// not trigger a re-tune on the loaded instance.
	same, err := datasynth.GenerateBatch(cfg, 128, rng)
	if err != nil {
		t.Fatal(err)
	}
	drift, err := fresh.ShouldRetune([]*embedding.Batch{same})
	if err != nil {
		t.Fatal(err)
	}
	if drift {
		t.Error("loaded instance flagged the tuning distribution as drifted")
	}
}

func TestLoadTunedRejectsMismatches(t *testing.T) {
	rf, _ := tunedInstance(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "tuned.json")
	if err := rf.SaveTuned(path); err != nil {
		t.Fatal(err)
	}

	// Wrong device.
	other := New(gpusim.A100(), rf.Features())
	if err := other.LoadTuned(path); err == nil {
		t.Error("device mismatch accepted")
	}
	// Wrong feature count.
	short := New(gpusim.V100(), rf.Features()[:3])
	if err := short.LoadTuned(path); err == nil {
		t.Error("feature-count mismatch accepted")
	}
	// Corrupt JSON.
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	fresh := New(gpusim.V100(), rf.Features())
	if err := fresh.LoadTuned(bad); err == nil {
		t.Error("corrupt file accepted")
	}
	if err := fresh.LoadTuned(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file accepted")
	}
	// Saving before tuning fails.
	if err := fresh.SaveTuned(filepath.Join(dir, "x.json")); err == nil {
		t.Error("saving untuned instance accepted")
	}
}
