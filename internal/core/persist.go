package core

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/sched"
	"repro/internal/tuner"
)

// tunedFile is the on-disk form of a tuning result: schedules travel as
// their Name() strings and are reconstructed through sched.ParseSchedule.
type tunedFile struct {
	Version   int       `json:"version"`
	Device    string    `json:"device"`
	Features  int       `json:"features"`
	Occupancy int       `json:"occupancy"`
	Latency   float64   `json:"latency_s"`
	Choices   []string  `json:"choices"`
	MeanPF    []float64 `json:"mean_pf"`
}

const tunedFileVersion = 1

// SaveTuned writes the current tuning result to path as JSON, so a serving
// process can load schedules tuned offline (the paper tunes on a DGX, serves
// elsewhere, and re-tunes every few days).
func (r *RecFlex) SaveTuned(path string) error {
	r.mu.RLock()
	tuned := r.tuned
	baseline := r.baseline
	r.mu.RUnlock()
	if tuned == nil {
		return errNotTuned
	}
	tf := tunedFile{
		Version:   tunedFileVersion,
		Device:    r.dev.Name,
		Features:  len(r.model.Features),
		Occupancy: tuned.Occupancy,
		Latency:   tuned.Latency,
	}
	for _, c := range tuned.Choices {
		tf.Choices = append(tf.Choices, c.Name())
	}
	for _, p := range baseline {
		tf.MeanPF = append(tf.MeanPF, p.meanPF)
	}
	data, err := json.MarshalIndent(&tf, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadTuned installs a tuning result previously written by SaveTuned. The
// file must match this instance's device and feature count.
func (r *RecFlex) LoadTuned(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tf tunedFile
	if err := json.Unmarshal(data, &tf); err != nil {
		return fmt.Errorf("core: parsing %s: %w", path, err)
	}
	if tf.Version != tunedFileVersion {
		return fmt.Errorf("core: %s has version %d, want %d", path, tf.Version, tunedFileVersion)
	}
	if tf.Device != r.dev.Name {
		return fmt.Errorf("core: %s was tuned for %s, this instance targets %s", path, tf.Device, r.dev.Name)
	}
	if tf.Features != len(r.model.Features) || len(tf.Choices) != len(r.model.Features) {
		return fmt.Errorf("core: %s covers %d features (%d choices), model has %d",
			path, tf.Features, len(tf.Choices), len(r.model.Features))
	}
	choices := make([]sched.Schedule, len(tf.Choices))
	idx := make([]int, len(tf.Choices))
	for f, name := range tf.Choices {
		s, err := sched.ParseSchedule(name)
		if err != nil {
			return fmt.Errorf("core: feature %d: %w", f, err)
		}
		choices[f] = s
		idx[f] = findCandidate(r.model.Candidates[f], name)
	}
	res := &tuner.Result{
		Choices:   choices,
		ChoiceIdx: idx,
		Occupancy: tf.Occupancy,
		Latency:   tf.Latency,
	}
	var baseline []featureProfile
	if len(tf.MeanPF) == len(r.model.Features) {
		baseline = make([]featureProfile, len(tf.MeanPF))
		for f, m := range tf.MeanPF {
			baseline[f].meanPF = m
		}
	}
	r.mu.Lock()
	r.tuned = res
	r.baseline = baseline
	r.mu.Unlock()
	return nil
}

// findCandidate locates a schedule name in a candidate set (-1 if the loaded
// schedule is not among the instance's candidates — legal, since candidate
// sets may have changed between tuning and serving).
func findCandidate(candidates []sched.Schedule, name string) int {
	for i, c := range candidates {
		if c.Name() == name {
			return i
		}
	}
	return -1
}
