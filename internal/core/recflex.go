// Package core assembles RecFlex itself: the paper's primary contribution as
// a usable system. A core.RecFlex owns the model description and candidate
// schedules, tunes them on historical data with the interference-aware tuner,
// compiles fused kernels with runtime thread mapping for every incoming
// batch, and tracks workload drift to decide when periodic re-tuning is due
// (§IV-A3: "we re-tune the schedules periodically to handle the distribution
// shifts").
package core

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/tuner"
)

// RecFlex is a tuned embedding-layer optimizer for one recommendation model
// on one device. Create it with New, call Tune once on sampled historical
// batches, then CompileBatch/Measure per request. Safe for concurrent
// Measure/CompileBatch after tuning.
type RecFlex struct {
	dev   *gpusim.Device
	model *tuner.Model

	mu    sync.RWMutex
	tuned *tuner.Result
	// Workload profile captured at tuning time, for drift detection.
	baseline []featureProfile
}

type featureProfile struct {
	meanPF float64
}

// New creates a RecFlex instance with the default candidate sets.
func New(dev *gpusim.Device, features []fusion.FeatureInfo) *RecFlex {
	return &RecFlex{dev: dev, model: tuner.DefaultModel(features)}
}

// NewWithCandidates creates a RecFlex instance with user-provided candidate
// sets (the paper's customized schedule templates).
func NewWithCandidates(dev *gpusim.Device, features []fusion.FeatureInfo, candidates [][]sched.Schedule) (*RecFlex, error) {
	m := &tuner.Model{Features: features, Candidates: candidates}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &RecFlex{dev: dev, model: m}, nil
}

// Clone returns an independent instance sharing the immutable model and
// device but owning its own tuning state. A continuous serving loop re-tunes
// and hot-swaps on a clone without perturbing the receiver (or a cached
// instance shared across experiments).
func (r *RecFlex) Clone() *RecFlex {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return &RecFlex{
		dev:      r.dev,
		model:    r.model,
		tuned:    r.tuned,
		baseline: append([]featureProfile(nil), r.baseline...),
	}
}

// adoptFrom installs another instance's tuning result and drift baseline —
// the receiver-side commit of a schedule hot-swap, after a supervised run
// ends on a re-tuned generation. Both instances must share a model.
func (r *RecFlex) adoptFrom(o *RecFlex) {
	o.mu.RLock()
	tuned, baseline := o.tuned, append([]featureProfile(nil), o.baseline...)
	o.mu.RUnlock()
	r.mu.Lock()
	r.tuned = tuned
	r.baseline = baseline
	r.mu.Unlock()
}

// Features returns the model description.
func (r *RecFlex) Features() []fusion.FeatureInfo { return r.model.Features }

// Device returns the target device.
func (r *RecFlex) Device() *gpusim.Device { return r.dev }

// Tuned returns the current tuning result, or nil before Tune.
func (r *RecFlex) Tuned() *tuner.Result {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.tuned
}

// Tune runs the two-stage interference-simulated search on the historical
// batches and installs the result.
func (r *RecFlex) Tune(batches []*embedding.Batch, opts tuner.Options) error {
	res, err := tuner.Tune(r.dev, r.model, batches, opts)
	if err != nil {
		return err
	}
	profile, err := r.profile(batches)
	if err != nil {
		return err
	}
	r.mu.Lock()
	r.tuned = res
	r.baseline = profile
	r.mu.Unlock()
	return nil
}

// errNotTuned is returned by batch operations before Tune has run.
var errNotTuned = fmt.Errorf("core: RecFlex has not been tuned; call Tune first")

// CompileBatch builds the fused kernel for one input batch with the tuned
// schedules, tuned occupancy and runtime thread mapping.
func (r *RecFlex) CompileBatch(batch *embedding.Batch) (*fusion.Fused, error) {
	r.mu.RLock()
	tuned := r.tuned
	r.mu.RUnlock()
	if tuned == nil {
		return nil, errNotTuned
	}
	return fusion.Compile(r.dev, r.model.Features, tuned.Choices, batch, fusion.Options{
		TargetBlocksPerSM: tuned.Occupancy,
	})
}

// Name implements baselines.Baseline.
func (r *RecFlex) Name() string { return "RecFlex" }

// Supports implements baselines.Baseline.
func (r *RecFlex) Supports([]fusion.FeatureInfo) error {
	if r.Tuned() == nil {
		return errNotTuned
	}
	return nil
}

// Measure implements baselines.Baseline: the simulated fused-kernel time of
// one batch (launch overhead included, matching the baseline accounting).
func (r *RecFlex) Measure(dev *gpusim.Device, _ []fusion.FeatureInfo, batch *embedding.Batch) (float64, error) {
	if dev.Name != r.dev.Name {
		return 0, fmt.Errorf("core: RecFlex was tuned for %s, asked to run on %s", r.dev.Name, dev.Name)
	}
	fu, err := r.CompileBatch(batch)
	if err != nil {
		return 0, err
	}
	res, err := fu.Simulate()
	if err != nil {
		return 0, err
	}
	return res.Time + dev.KernelLaunchOverhead, nil
}

// Run compiles, simulates and functionally executes one batch.
func (r *RecFlex) Run(tables []*embedding.Table, batch *embedding.Batch) ([][]float32, *gpusim.SimResult, error) {
	fu, err := r.CompileBatch(batch)
	if err != nil {
		return nil, nil, err
	}
	return fu.Run(tables, batch)
}

// profile captures per-feature mean pooling factors over batches.
func (r *RecFlex) profile(batches []*embedding.Batch) ([]featureProfile, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("core: no batches to profile")
	}
	sums := make([]float64, len(r.model.Features))
	counts := make([]float64, len(r.model.Features))
	for _, b := range batches {
		ws, err := fusion.AnalyzeBatch(r.model.Features, b)
		if err != nil {
			return nil, err
		}
		for f := range ws {
			sums[f] += float64(ws[f].TotalRows)
			counts[f] += float64(ws[f].BatchSize)
		}
	}
	out := make([]featureProfile, len(sums))
	for f := range sums {
		if counts[f] > 0 {
			out[f].meanPF = sums[f] / counts[f]
		}
	}
	return out, nil
}

// DriftThreshold is the relative mean-pooling-factor change that triggers a
// re-tune recommendation.
const DriftThreshold = 0.5

// ShouldRetune reports whether the recent batches' workload distribution has
// drifted far enough from the tuning-time profile that the schedules are
// likely stale. It implements the paper's periodic re-tuning trigger as a
// statistic rather than a wall clock, so tests can exercise it.
func (r *RecFlex) ShouldRetune(recent []*embedding.Batch) (bool, error) {
	r.mu.RLock()
	base := r.baseline
	r.mu.RUnlock()
	if base == nil {
		return true, nil
	}
	profile, err := r.profile(recent)
	if err != nil {
		return false, err
	}
	for f := range profile {
		old := base[f].meanPF
		if old < 1 {
			old = 1
		}
		if math.Abs(profile[f].meanPF-base[f].meanPF)/old > DriftThreshold {
			return true, nil
		}
	}
	return false, nil
}
