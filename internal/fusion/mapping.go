package fusion

import (
	"fmt"

	"repro/internal/gpusim"
)

// TaskMap is the host-built mapping from fused-kernel block index to
// (feature, relative block) — the d_task_map and d_blocks_map arrays of the
// paper's Figure 8.
type TaskMap struct {
	// Feature[i] and Rel[i] identify the work of fused block i.
	Feature []int32
	Rel     []int32

	// Allocated[f] is the number of fused blocks feature f received (B_f).
	Allocated []int32

	// Needed[f] is the number of blocks feature f's plan actually wants
	// for this batch (N_f). Runtime mapping keeps Allocated == Needed;
	// static mappings may under- or over-allocate.
	Needed []int32
}

// NumBlocks returns the fused grid size.
func (m *TaskMap) NumBlocks() int { return len(m.Feature) }

// Validate checks the exact-cover invariant: every allocated block appears
// exactly once with a dense relative index.
func (m *TaskMap) Validate(numFeatures int) error {
	if len(m.Feature) != len(m.Rel) {
		return fmt.Errorf("fusion: task map arrays disagree: %d features, %d rels", len(m.Feature), len(m.Rel))
	}
	if len(m.Allocated) != numFeatures || len(m.Needed) != numFeatures {
		return fmt.Errorf("fusion: task map per-feature arrays sized %d/%d, want %d", len(m.Allocated), len(m.Needed), numFeatures)
	}
	seen := make([]int32, numFeatures)
	total := 0
	for i := range m.Feature {
		f := m.Feature[i]
		if f < 0 || int(f) >= numFeatures {
			return fmt.Errorf("fusion: task map entry %d names feature %d of %d", i, f, numFeatures)
		}
		if m.Rel[i] != seen[f] {
			return fmt.Errorf("fusion: feature %d relative index %d, want dense %d", f, m.Rel[i], seen[f])
		}
		seen[f]++
		total++
	}
	for f := 0; f < numFeatures; f++ {
		if seen[f] != m.Allocated[f] {
			return fmt.Errorf("fusion: feature %d has %d entries, allocated %d", f, seen[f], m.Allocated[f])
		}
		if m.Allocated[f] <= 0 {
			return fmt.Errorf("fusion: feature %d allocated %d blocks, want >= 1", f, m.Allocated[f])
		}
	}
	if total != m.NumBlocks() {
		return fmt.Errorf("fusion: task map covers %d of %d blocks", total, m.NumBlocks())
	}
	return nil
}

// buildTaskMap constructs the mapping for the configured mode.
func (fu *Fused) buildTaskMap() error {
	n := len(fu.Features)
	m := TaskMap{
		Allocated: make([]int32, n),
		Needed:    make([]int32, n),
	}
	for f := 0; f < n; f++ {
		needed := fu.Plans[f].NumBlocks
		m.Needed[f] = int32(needed)
		alloc := needed
		if fu.Opts.Mapping != MapRuntime {
			alloc = fu.Opts.StaticBlocks[f]
			if alloc < 1 {
				alloc = 1
			}
		}
		m.Allocated[f] = int32(alloc)
	}
	total := 0
	for f := 0; f < n; f++ {
		total += int(m.Allocated[f])
	}
	m.Feature = make([]int32, 0, total)
	m.Rel = make([]int32, 0, total)
	for f := 0; f < n; f++ {
		for r := int32(0); r < m.Allocated[f]; r++ {
			m.Feature = append(m.Feature, int32(f))
			m.Rel = append(m.Rel, r)
		}
	}
	fu.Map = m
	return m.Validate(n)
}

// blockWork computes the simulated work of fused block i, folding plan
// blocks when the feature is under-allocated and emitting an idle block when
// it is over-allocated.
func (m *TaskMap) blockWork(fu *Fused, i int) gpusim.BlockWork {
	f := int(m.Feature[i])
	rel := int(m.Rel[i])
	plan := fu.Plans[f]
	needed := int(m.Needed[f])
	alloc := int(m.Allocated[f])

	if alloc == needed {
		return plan.Blocks[rel]
	}
	if rel >= needed {
		// Idle block: launched with the full warp complement, reads its
		// task-map entry, finds nothing and exits. It still occupies a
		// block slot for the device's scheduling overhead.
		warps := 1
		if len(plan.Blocks) > 0 && plan.Blocks[0].Warps > warps {
			warps = plan.Blocks[0].Warps
		}
		return gpusim.BlockWork{Warps: warps, ActiveFrac: 0}
	}
	// Fold plan blocks into one fused block that runs them back to back:
	// block rel takes the contiguous chunk [rel*q, (rel+1)*q) with
	// q = ceil(needed/alloc) — the paper's "the first block will perform
	// the computation of two blocks sequentially". The ceiling quantization
	// is what makes under-allocation imbalanced: early blocks carry q plan
	// blocks while late ones may carry fewer or none.
	q := (needed + alloc - 1) / alloc
	lo, hi := rel*q, (rel+1)*q
	if hi > needed {
		hi = needed
	}
	if lo >= needed {
		warps := 1
		if len(plan.Blocks) > 0 && plan.Blocks[0].Warps > warps {
			warps = plan.Blocks[0].Warps
		}
		return gpusim.BlockWork{Warps: warps, ActiveFrac: 0}
	}
	var merged gpusim.BlockWork
	var weight float64
	segments := 0
	for j := lo; j < hi; j++ {
		segments++
		b := plan.Blocks[j]
		merged.CompCycles += b.CompCycles
		merged.DRAMBytes += b.DRAMBytes
		merged.L2Bytes += b.L2Bytes
		merged.MemRequests += b.MemRequests
		if b.Warps > merged.Warps {
			merged.Warps = b.Warps
		}
		w := b.CompCycles
		if w <= 0 {
			w = 1
		}
		merged.ActiveFrac += b.ActiveFrac * w
		merged.PredOffFrac += b.PredOffFrac * w
		weight += w
	}
	if weight > 0 {
		merged.ActiveFrac /= weight
		merged.PredOffFrac /= weight
	}
	if merged.Warps == 0 {
		merged.Warps = 1
	}
	// Folded segments run strictly back to back inside the block: at each
	// transition the memory pipeline drains before the next segment's
	// loads can issue. The drain is one full-latency request wave per
	// boundary — charged as extra memory requests, which lowers the
	// block's effective memory-level parallelism exactly the way an empty
	// pipeline does. This is the cost behind the paper's §VI-D finding
	// that static mapping collapses on long-tail requests.
	if segments > 1 {
		merged.MemRequests += float64(segments-1) *
			float64(merged.Warps) * fu.Device.MemParallelism
		merged.CompCycles += float64(segments-1) * 64 // per-segment loop setup
	}
	return merged
}

// StaticAllocation derives per-feature static block counts from historical
// block usage: the average (rounded up) or maximum across batches. This is
// the data collection step of the Figure 13 ablation.
func StaticAllocation(history [][]int, useMax bool) ([]int, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("fusion: no historical block usage")
	}
	n := len(history[0])
	out := make([]int, n)
	for _, rec := range history {
		if len(rec) != n {
			return nil, fmt.Errorf("fusion: inconsistent history record length %d vs %d", len(rec), n)
		}
		for f, b := range rec {
			if useMax {
				if b > out[f] {
					out[f] = b
				}
			} else {
				out[f] += b
			}
		}
	}
	if !useMax {
		for f := range out {
			out[f] = (out[f] + len(history) - 1) / len(history)
		}
	}
	for f := range out {
		if out[f] < 1 {
			out[f] = 1
		}
	}
	return out, nil
}

// BlockUsage returns the per-feature block counts this fused kernel needed —
// one history record for StaticAllocation.
func (fu *Fused) BlockUsage() []int {
	out := make([]int, len(fu.Features))
	for f := range out {
		out[f] = int(fu.Map.Needed[f])
	}
	return out
}
