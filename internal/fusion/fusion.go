// Package fusion implements RecFlex's heterogeneous schedule fusion compiler:
// it takes one selected schedule per feature and produces a single fused GPU
// kernel in which different block groups run different schedules, mirroring
// the generated CUDA kernel of the paper's Figure 8.
//
// The compiler owns the four mechanisms of §IV-B:
//
//   - Runtime thread mapping: the host analyzes the input workload and builds
//     the d_task_map / d_blocks_map arrays that tell each block which feature
//     it processes and its relative index within that feature's block group.
//     Static mapping variants (average / maximum historical workload) exist
//     for the Figure 13 ablation.
//   - Occupancy control: the fused kernel's register usage can be capped (with
//     the overflow spilled to global memory and charged as DRAM traffic) and
//     its shared memory padded, so the tuner can pin any occupancy value.
//   - Shared-memory union: the fused kernel's shared memory is the maximum
//     over schedules, as the block groups never overlap.
//   - Branch dispatch: per-block if-else dispatch costs a few integer
//     comparisons; the function-pointer alternative the paper measured at
//     45% slower is available as an ablation mode.
package fusion

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// FeatureInfo describes one feature field of the model being compiled.
type FeatureInfo struct {
	Name      string
	Dim       int
	TableRows int
	Pool      embedding.PoolMode
}

// MappingMode selects how blocks are assigned to features.
type MappingMode int

const (
	// MapRuntime sizes each feature's block group from the actual input
	// workload at every batch (RecFlex's design).
	MapRuntime MappingMode = iota
	// MapStaticAvg allocates a fixed block count per feature from the
	// average historical workload; excess work folds into the allocated
	// blocks serially (workload imbalance).
	MapStaticAvg
	// MapStaticMax allocates from the maximum historical workload; unused
	// blocks launch and exit idle (resource wastage).
	MapStaticMax
)

// String implements fmt.Stringer.
func (m MappingMode) String() string {
	switch m {
	case MapRuntime:
		return "runtime"
	case MapStaticAvg:
		return "static-avg"
	case MapStaticMax:
		return "static-max"
	default:
		return fmt.Sprintf("MappingMode(%d)", int(m))
	}
}

// DispatchMode selects how the fused kernel routes a block to its schedule.
type DispatchMode int

const (
	// DispatchIfElse inlines every schedule behind block-level branches
	// (the paper's choice: negligible overhead even with thousands of
	// branches).
	DispatchIfElse DispatchMode = iota
	// DispatchFuncPtr jumps through a device function-pointer array, which
	// the paper measured at 45% slower due to call overhead.
	DispatchFuncPtr
)

// funcPtrOverheadFactor is the measured slowdown of function-pointer dispatch.
const funcPtrOverheadFactor = 1.45

// ifElseCyclesPerCompare is the cost of one block-level branch comparison.
const ifElseCyclesPerCompare = 2.0

// Options configures compilation.
type Options struct {
	// TargetBlocksPerSM, when positive, pins the fused kernel's occupancy
	// (explicit occupancy control). Zero lets the natural occupancy stand.
	TargetBlocksPerSM int

	// Mapping selects runtime or static thread mapping.
	Mapping MappingMode

	// StaticBlocks[f] is the per-feature block allocation for the static
	// mapping modes (ignored for MapRuntime).
	StaticBlocks []int

	// Dispatch selects branch or function-pointer dispatch.
	Dispatch DispatchMode

	// SpillReuse scales the local-memory traffic caused by each spilled
	// register (accesses per block lifetime). Zero uses a default of 4.
	SpillReuse float64
}

// Fused is the compiled fused kernel plus everything needed to execute it
// functionally and to account per-feature time.
type Fused struct {
	Device   *gpusim.Device
	Features []FeatureInfo
	Choices  []sched.Schedule
	Plans    []*sched.Plan
	Kernel   gpusim.Kernel
	Map      TaskMap
	Opts     Options

	// SpilledRegs[f] is the number of per-thread registers feature f's
	// schedule spilled under occupancy control.
	SpilledRegs []int

	// UniqueSchedules is the number of distinct schedules after sharing
	// (features with identical schedule and dimension share code, which
	// shortens the dispatch chain).
	UniqueSchedules int
}

// WorkingSetBytes estimates the bytes the batch touches across all features,
// the grid-level L2 pressure term.
func WorkingSetBytes(features []FeatureInfo, ws []sched.Workload) float64 {
	total := 0.0
	for f := range ws {
		rowBytes := float64(features[f].Dim) * 4
		touched := float64(ws[f].UniqueRows) * rowBytes
		tableBytes := float64(features[f].TableRows) * rowBytes
		if touched > tableBytes {
			touched = tableBytes
		}
		total += touched
	}
	return total
}

// AnalyzeBatch performs the host-side workload analysis of every feature.
// In production this folds into CPU preprocessing; its cost is measured by
// the overhead experiment.
func AnalyzeBatch(features []FeatureInfo, batch *embedding.Batch) ([]sched.Workload, error) {
	if len(features) != len(batch.Features) {
		return nil, fmt.Errorf("fusion: %d features described, batch has %d", len(features), len(batch.Features))
	}
	ws := make([]sched.Workload, len(features))
	for f := range features {
		ws[f] = sched.AnalyzeWorkload(&batch.Features[f], features[f].Dim, features[f].TableRows)
	}
	return ws, nil
}

// Compile builds the fused kernel for one batch under the given per-feature
// schedule choices.
func Compile(dev *gpusim.Device, features []FeatureInfo, choices []sched.Schedule, batch *embedding.Batch, opts Options) (*Fused, error) {
	if len(features) == 0 {
		return nil, fmt.Errorf("fusion: no features")
	}
	if len(choices) != len(features) {
		return nil, fmt.Errorf("fusion: %d choices for %d features", len(choices), len(features))
	}
	if opts.Mapping != MapRuntime && len(opts.StaticBlocks) != len(features) {
		return nil, fmt.Errorf("fusion: %s mapping needs StaticBlocks for all %d features", opts.Mapping, len(features))
	}
	ws, err := AnalyzeBatch(features, batch)
	if err != nil {
		return nil, err
	}

	l2 := sched.L2Context{
		CacheBytes:      float64(dev.L2SizeBytes),
		WorkingSetBytes: WorkingSetBytes(features, ws),
	}

	// Fused kernel resources: the launch geometry is the widest block, the
	// register footprint the hungriest schedule, and the shared memory the
	// union (max) since block groups never coexist within a block.
	res := gpusim.KernelResources{ThreadsPerBlock: 1}
	needRegs := make([]int, len(features))
	for f, s := range choices {
		r := s.Resources(features[f].Dim)
		needRegs[f] = r.RegsPerThread
		if r.ThreadsPerBlock > res.ThreadsPerBlock {
			res.ThreadsPerBlock = r.ThreadsPerBlock
		}
		if r.RegsPerThread > res.RegsPerThread {
			res.RegsPerThread = r.RegsPerThread
		}
		if r.SharedMemPerBlock > res.SharedMemPerBlock {
			res.SharedMemPerBlock = r.SharedMemPerBlock
		}
	}

	// Explicit occupancy control.
	spilled := make([]int, len(features))
	if opts.TargetBlocksPerSM > 0 {
		adj, _, err := res.ControlOccupancy(dev, opts.TargetBlocksPerSM)
		if err != nil {
			return nil, fmt.Errorf("fusion: %w", err)
		}
		for f := range features {
			if needRegs[f] > adj.RegsPerThread {
				spilled[f] = needRegs[f] - adj.RegsPerThread
			}
		}
		res = adj
	}

	// Plan every feature.
	plans := make([]*sched.Plan, len(features))
	for f, s := range choices {
		if !s.Supports(&ws[f]) {
			return nil, fmt.Errorf("fusion: feature %d (%s): schedule %s unsupported", f, features[f].Name, s.Name())
		}
		p, err := s.Plan(&ws[f], dev, l2)
		if err != nil {
			return nil, fmt.Errorf("fusion: feature %d (%s): %w", f, features[f].Name, err)
		}
		plans[f] = p
	}

	unique := countUniqueSchedules(features, choices)

	fused := &Fused{
		Device:          dev,
		Features:        features,
		Choices:         choices,
		Plans:           plans,
		Opts:            opts,
		SpilledRegs:     spilled,
		UniqueSchedules: unique,
	}
	if err := fused.buildTaskMap(); err != nil {
		return nil, err
	}
	fused.buildKernel(res)
	return fused, nil
}

// countUniqueSchedules counts distinct (schedule name, dim) pairs: features
// with identical workload shape share the compiled schedule body.
func countUniqueSchedules(features []FeatureInfo, choices []sched.Schedule) int {
	type key struct {
		name string
		dim  int
	}
	seen := make(map[key]struct{}, len(choices))
	for f, s := range choices {
		seen[key{s.Name(), features[f].Dim}] = struct{}{}
	}
	return len(seen)
}

// buildKernel assembles the gpusim kernel from the task map and plans,
// charging dispatch overhead and spill traffic.
func (fu *Fused) buildKernel(res gpusim.KernelResources) {
	spillReuse := fu.Opts.SpillReuse
	if spillReuse <= 0 {
		spillReuse = 4
	}
	blocks := make([]gpusim.BlockWork, len(fu.Map.Feature))
	// Average dispatch depth: with code sharing the chain has
	// UniqueSchedules branches and a block falls through half on average.
	branchCycles := ifElseCyclesPerCompare * float64(fu.UniqueSchedules) / 2

	for i := range blocks {
		f := int(fu.Map.Feature[i])
		w := fu.Map.blockWork(fu, i)

		// Every block reads its d_task_map / d_blocks_map entries from
		// global memory before dispatching.
		w.DRAMBytes += 32
		w.MemRequests++

		switch fu.Opts.Dispatch {
		case DispatchFuncPtr:
			// The indirect call blocks inlining: instruction overhead per
			// call plus fragmented memory-request batching across the
			// call boundary (the 45% degradation of §IV-B).
			w.CompCycles = w.CompCycles*funcPtrOverheadFactor + 50
			w.MemRequests *= funcPtrOverheadFactor
		default:
			w.CompCycles += branchCycles
		}
		if fu.SpilledRegs[f] > 0 && w.Warps > 0 {
			// Spilled registers live in thread-local memory; the traffic
			// is mostly absorbed by the cache hierarchy (charged to L2)
			// with a residual DRAM share for capacity misses.
			threads := float64(w.Warps * fu.Device.WarpSize)
			spillBytes := gpusim.SpillBytesPerThread(fu.SpilledRegs[f], spillReuse) * threads
			w.L2Bytes += spillBytes * 0.8
			w.DRAMBytes += spillBytes * 0.2
			w.MemRequests += spillBytes / 128
		}
		w.Tag = f
		w.Sub = int(fu.Map.Rel[i])
		blocks[i] = w
	}
	fu.Kernel = gpusim.Kernel{
		Name:                fmt.Sprintf("fused_%s_%d", fu.Opts.Mapping, len(fu.Features)),
		Resources:           res,
		Blocks:              blocks,
		BlocksPerSMOverride: fu.Opts.TargetBlocksPerSM,
	}
}

// Simulate runs the fused kernel on the device.
func (fu *Fused) Simulate() (*gpusim.SimResult, error) {
	return gpusim.Simulate(fu.Device, &fu.Kernel)
}
