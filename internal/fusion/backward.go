package fusion

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// BackwardPass is the fused gradient kernel of one compiled forward pass:
// the same heterogeneous per-feature thread mapping, inverted data movement
// (coalesced upstream-gradient reads, scattered atomic accumulation into the
// gradient tables). It extends RecFlex to the training direction the paper
// declares reachable ("there is no fundamental reason limiting RecFlex from
// optimizing the training process").
type BackwardPass struct {
	Forward *Fused
	Plans   []*sched.Plan
	Kernel  gpusim.Kernel
}

// Backward derives the fused gradient kernel from a compiled forward kernel.
// Only runtime thread mapping is supported: the training path has no reason
// to run the static-mapping ablations.
func (fu *Fused) Backward(batch *embedding.Batch) (*BackwardPass, error) {
	if fu.Opts.Mapping != MapRuntime {
		return nil, fmt.Errorf("fusion: backward requires runtime thread mapping, got %s", fu.Opts.Mapping)
	}
	ws, err := AnalyzeBatch(fu.Features, batch)
	if err != nil {
		return nil, err
	}
	l2 := sched.L2Context{
		CacheBytes:      float64(fu.Device.L2SizeBytes),
		WorkingSetBytes: WorkingSetBytes(fu.Features, ws),
	}
	bp := &BackwardPass{Forward: fu, Plans: make([]*sched.Plan, len(fu.Features))}
	var blocks []gpusim.BlockWork
	for f := range fu.Features {
		p, err := sched.BackwardPlan(fu.Plans[f], &ws[f], fu.Device, l2)
		if err != nil {
			return nil, fmt.Errorf("fusion: backward of feature %d: %w", f, err)
		}
		bp.Plans[f] = p
		for i := range p.Blocks {
			b := p.Blocks[i]
			b.Tag = f
			b.Sub = i
			blocks = append(blocks, b)
		}
	}
	bp.Kernel = gpusim.Kernel{
		Name:      fu.Kernel.Name + "_bwd",
		Resources: fu.Kernel.Resources,
		Blocks:    blocks,
	}
	return bp, nil
}

// Simulate runs the gradient kernel.
func (bp *BackwardPass) Simulate() (*gpusim.SimResult, error) {
	return gpusim.Simulate(bp.Forward.Device, &bp.Kernel)
}

// Execute accumulates the functional table gradients: grads[f] has shape
// TableRows*Dim of feature f. Upstream[f] is the pooled-output gradient
// (batch*dim).
func (bp *BackwardPass) Execute(batch *embedding.Batch, upstream [][]float32) ([][]float32, error) {
	fu := bp.Forward
	if len(upstream) != len(fu.Features) {
		return nil, fmt.Errorf("fusion: %d upstream gradients for %d features", len(upstream), len(fu.Features))
	}
	grads := make([][]float32, len(fu.Features))
	for f := range fu.Features {
		fi := fu.Features[f]
		if len(upstream[f]) != batch.BatchSize()*fi.Dim {
			return nil, fmt.Errorf("fusion: feature %d upstream length %d != %d", f, len(upstream[f]), batch.BatchSize()*fi.Dim)
		}
		grads[f] = make([]float32, fi.TableRows*fi.Dim)
		if err := bp.Plans[f].ExecuteBackwardAll(fi.TableRows, fi.Dim, &batch.Features[f], fi.Pool, upstream[f], grads[f]); err != nil {
			return nil, fmt.Errorf("fusion: feature %d: %w", f, err)
		}
	}
	return grads, nil
}
