package fusion

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

func TestFusedBackwardMatchesReference(t *testing.T) {
	features, tables, batch, _ := testModel(t, 96, 71)
	// Mean pooling for a couple of features exercises both gradients.
	features[1].Pool = embedding.PoolMean
	features[4].Pool = embedding.PoolMean
	fu, err := Compile(gpusim.V100(), features, heterogeneousChoices(), batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := fu.Backward(batch)
	if err != nil {
		t.Fatal(err)
	}
	r, err := bp.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if r.Time <= 0 {
		t.Error("backward kernel time must be positive")
	}

	rng := rand.New(rand.NewSource(71))
	upstream := make([][]float32, len(features))
	for f := range features {
		upstream[f] = make([]float32, batch.BatchSize()*features[f].Dim)
		for i := range upstream[f] {
			upstream[f][i] = float32(rng.NormFloat64())
		}
	}
	grads, err := bp.Execute(batch, upstream)
	if err != nil {
		t.Fatal(err)
	}
	for f := range features {
		want, err := embedding.GradCPU(tables[f], &batch.Features[f], features[f].Pool, upstream[f])
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(float64(want[i]-grads[f][i])) > 1e-3 {
				t.Fatalf("feature %d grad[%d] = %g, want %g", f, i, grads[f][i], want[i])
			}
		}
	}
}

func TestFusedBackwardRejectsStaticMapping(t *testing.T) {
	features, _, batch, _ := testModel(t, 32, 73)
	choices := heterogeneousChoices()
	static := make([]int, len(features))
	for i := range static {
		static[i] = 4
	}
	fu, err := Compile(gpusim.V100(), features, choices, batch, Options{
		Mapping: MapStaticAvg, StaticBlocks: static,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fu.Backward(batch); err == nil {
		t.Error("backward with static mapping accepted")
	}
}

func TestFusedBackwardValidatesUpstream(t *testing.T) {
	features, _, batch, _ := testModel(t, 32, 75)
	fu, err := Compile(gpusim.V100(), features, heterogeneousChoices(), batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bp, err := fu.Backward(batch)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := bp.Execute(batch, nil); err == nil {
		t.Error("missing upstream gradients accepted")
	}
	bad := make([][]float32, len(features))
	for f := range bad {
		bad[f] = make([]float32, 1)
	}
	if _, err := bp.Execute(batch, bad); err == nil {
		t.Error("short upstream gradients accepted")
	}
}
