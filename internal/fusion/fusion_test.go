package fusion

import (
	"math/rand"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// testModel builds a small heterogeneous model with tables and one batch.
func testModel(t *testing.T, batchSize int, seed int64) ([]FeatureInfo, []*embedding.Table, *embedding.Batch, *datasynth.ModelConfig) {
	t.Helper()
	cfg := &datasynth.ModelConfig{Name: "test", Seed: seed, Features: []datasynth.FeatureSpec{
		{Name: "onehot4", Dim: 4, Rows: 512, PF: datasynth.Fixed{K: 1}, Coverage: 1},
		{Name: "multi8", Dim: 8, Rows: 1024, PF: datasynth.Normal{Mu: 50, Sigma: 10}, Coverage: 1},
		{Name: "multi64", Dim: 64, Rows: 2048, PF: datasynth.Uniform{Lo: 1, Hi: 30}, Coverage: 0.8},
		{Name: "big128", Dim: 128, Rows: 32768, PF: datasynth.Fixed{K: 60}, Coverage: 1},
		{Name: "sparse16", Dim: 16, Rows: 4096, PF: datasynth.Fixed{K: 5}, Coverage: 0.3, IDs: datasynth.IDZipf},
	}}
	tables, err := datasynth.BuildTables(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	batch, err := datasynth.GenerateBatch(cfg, batchSize, rng)
	if err != nil {
		t.Fatal(err)
	}
	features := make([]FeatureInfo, len(cfg.Features))
	for f := range features {
		features[f] = FeatureInfo{
			Name:      cfg.Features[f].Name,
			Dim:       cfg.Features[f].Dim,
			TableRows: cfg.Features[f].Rows,
			Pool:      embedding.PoolSum,
		}
	}
	return features, tables, batch, cfg
}

// heterogeneousChoices picks a deliberately varied schedule per feature.
func heterogeneousChoices() []sched.Schedule {
	return []sched.Schedule{
		sched.ThreadPerSample{Threads: 256, Unroll: 1},                // one-hot dim 4
		sched.SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 4},  // multi-hot dim 8
		sched.SubWarp{Threads: 256, Lanes: 16, Vec: 4, UnrollRows: 1}, // dim 64
		sched.BlockPerSample{Threads: 128, Vec: 4},                    // pf 200, dim 128
		sched.SubWarp{Threads: 128, Lanes: 4, Vec: 4, UnrollRows: 1},  // sparse dim 16
	}
}

func compileRuntime(t *testing.T, opts Options) (*Fused, []*embedding.Table, *embedding.Batch, []FeatureInfo) {
	t.Helper()
	features, tables, batch, _ := testModel(t, 128, 31)
	fu, err := Compile(gpusim.V100(), features, heterogeneousChoices(), batch, opts)
	if err != nil {
		t.Fatal(err)
	}
	return fu, tables, batch, features
}

func assertMatchesReference(t *testing.T, fu *Fused, features []FeatureInfo, tables []*embedding.Table, batch *embedding.Batch) {
	t.Helper()
	want, err := ReferenceOutputs(features, tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fu.Execute(tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	for f := range want {
		for i := range want[f] {
			if want[f][i] != got[f][i] {
				t.Fatalf("feature %d (%s): out[%d] = %g, want %g", f, features[f].Name, i, got[f][i], want[f][i])
			}
		}
	}
}

func TestFusedRuntimeMappingMatchesReference(t *testing.T) {
	fu, tables, batch, features := compileRuntime(t, Options{})
	assertMatchesReference(t, fu, features, tables, batch)
	if err := fu.Map.Validate(len(features)); err != nil {
		t.Error(err)
	}
	for f := range features {
		if fu.Map.Allocated[f] != fu.Map.Needed[f] {
			t.Errorf("runtime mapping must allocate exactly the need: feature %d %d vs %d",
				f, fu.Map.Allocated[f], fu.Map.Needed[f])
		}
	}
}

func TestFusedStaticMappingsMatchReference(t *testing.T) {
	features, tables, batch, cfg := testModel(t, 96, 33)
	choices := heterogeneousChoices()
	dev := gpusim.V100()

	// Collect history over a few batches for the static allocations.
	rng := rand.New(rand.NewSource(99))
	var history [][]int
	for i := 0; i < 5; i++ {
		b, err := datasynth.GenerateBatch(cfg, 64+32*i, rng)
		if err != nil {
			t.Fatal(err)
		}
		fu, err := Compile(dev, features, choices, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, fu.BlockUsage())
	}
	for _, useMax := range []bool{false, true} {
		alloc, err := StaticAllocation(history, useMax)
		if err != nil {
			t.Fatal(err)
		}
		mode := MapStaticAvg
		if useMax {
			mode = MapStaticMax
		}
		fu, err := Compile(dev, features, choices, batch, Options{Mapping: mode, StaticBlocks: alloc})
		if err != nil {
			t.Fatal(err)
		}
		assertMatchesReference(t, fu, features, tables, batch)
		if err := fu.Map.Validate(len(features)); err != nil {
			t.Errorf("%v: %v", mode, err)
		}
	}
}

func TestTaskMapExactCoverProperty(t *testing.T) {
	features, _, batch, _ := testModel(t, 64, 35)
	choices := heterogeneousChoices()
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		static := make([]int, len(features))
		for f := range static {
			static[f] = 1 + rng.Intn(20)
		}
		mode := []MappingMode{MapRuntime, MapStaticAvg, MapStaticMax}[rng.Intn(3)]
		opts := Options{Mapping: mode}
		if mode != MapRuntime {
			opts.StaticBlocks = static
		}
		fu, err := Compile(gpusim.V100(), features, choices, batch, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := fu.Map.Validate(len(features)); err != nil {
			t.Fatalf("trial %d (%v): %v", trial, mode, err)
		}
	}
}

func TestOccupancyControlHonored(t *testing.T) {
	dev := gpusim.V100()
	features, _, batch, _ := testModel(t, 128, 37)
	choices := heterogeneousChoices()
	for _, target := range []int{1, 2, 4} {
		fu, err := Compile(dev, features, choices, batch, Options{TargetBlocksPerSM: target})
		if err != nil {
			t.Fatalf("target %d: %v", target, err)
		}
		if got := fu.Kernel.EffectiveBlocksPerSM(dev); got != target {
			t.Errorf("target %d: effective %d", target, got)
		}
		res, err := fu.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		if res.BlocksPerSM != target {
			t.Errorf("target %d: simulated at %d", target, res.BlocksPerSM)
		}
	}
}

func TestOccupancyControlSpillsChargeTraffic(t *testing.T) {
	dev := gpusim.V100()
	features, _, batch, _ := testModel(t, 128, 39)
	choices := heterogeneousChoices()
	// ThreadPerSample on dim 4 uses 20 regs; SubWarp v4u1 ~38. At 8
	// blocks/SM with 256 threads the budget is 32 regs: some features spill.
	fuLow, err := Compile(dev, features, choices, batch, Options{TargetBlocksPerSM: 2})
	if err != nil {
		t.Fatal(err)
	}
	fuHigh, err := Compile(dev, features, choices, batch, Options{TargetBlocksPerSM: 8})
	if err != nil {
		t.Fatal(err)
	}
	spilledLow, spilledHigh := 0, 0
	for f := range features {
		spilledLow += fuLow.SpilledRegs[f]
		spilledHigh += fuHigh.SpilledRegs[f]
	}
	if spilledLow != 0 {
		t.Errorf("low occupancy should not spill, got %d regs", spilledLow)
	}
	if spilledHigh == 0 {
		t.Error("high occupancy with register-hungry schedules should spill")
	}
	_, dramLow, _ := fuLow.Kernel.TotalWork()
	_, dramHigh, _ := fuHigh.Kernel.TotalWork()
	if dramHigh <= dramLow {
		t.Errorf("spilling should add DRAM traffic: %g vs %g", dramHigh, dramLow)
	}
}

func TestFuncPtrDispatchSlower(t *testing.T) {
	features, _, batch, _ := testModel(t, 128, 41)
	// A uniform warp-per-sample schedule on small-dim features is
	// issue-bound, which is where call overhead hurts.
	uniform := sched.SubWarp{Threads: 256, Lanes: 32, Vec: 1, UnrollRows: 1}
	choices := make([]sched.Schedule, len(features))
	for i := range choices {
		choices[i] = uniform
	}
	dev := gpusim.V100()
	// Constrain occupancy so latency-bound behaviour is visible; the
	// function-pointer penalty hits both issue work and request batching.
	ifelse, err := Compile(dev, features, choices, batch, Options{Dispatch: DispatchIfElse, TargetBlocksPerSM: 1})
	if err != nil {
		t.Fatal(err)
	}
	fptr, err := Compile(dev, features, choices, batch, Options{Dispatch: DispatchFuncPtr, TargetBlocksPerSM: 1})
	if err != nil {
		t.Fatal(err)
	}
	rIf, err := ifelse.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	rPtr, err := fptr.Simulate()
	if err != nil {
		t.Fatal(err)
	}
	if rPtr.Time <= rIf.Time {
		t.Errorf("function-pointer dispatch (%g) should be slower than if-else (%g)", rPtr.Time, rIf.Time)
	}
}

// The Figure 13 direction: on a shifted workload, runtime mapping should beat
// both static mappings.
func TestRuntimeMappingBeatsStaticOnShiftedWorkload(t *testing.T) {
	features, _, _, cfg := testModel(t, 0x7fffffff&64, 43)
	choices := heterogeneousChoices()
	dev := gpusim.V100()

	// History from small batches...
	rng := rand.New(rand.NewSource(7))
	var history [][]int
	for i := 0; i < 6; i++ {
		b, err := datasynth.GenerateBatch(cfg, 64, rng)
		if err != nil {
			t.Fatal(err)
		}
		fu, err := Compile(dev, features, choices, b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		history = append(history, fu.BlockUsage())
	}
	avgAlloc, err := StaticAllocation(history, false)
	if err != nil {
		t.Fatal(err)
	}
	// ...then a long-tail request 8x larger arrives.
	tail, err := datasynth.GenerateBatch(cfg, 512, rng)
	if err != nil {
		t.Fatal(err)
	}
	timeFor := func(opts Options) float64 {
		fu, err := Compile(dev, features, choices, tail, opts)
		if err != nil {
			t.Fatal(err)
		}
		r, err := fu.Simulate()
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	runtime := timeFor(Options{})
	staticAvg := timeFor(Options{Mapping: MapStaticAvg, StaticBlocks: avgAlloc})
	if staticAvg <= runtime {
		t.Errorf("static-avg (%g) should lose to runtime mapping (%g) on a long-tail batch", staticAvg, runtime)
	}
}

func TestStaticAllocationMath(t *testing.T) {
	history := [][]int{{2, 10}, {4, 20}, {3, 0}}
	avg, err := StaticAllocation(history, false)
	if err != nil {
		t.Fatal(err)
	}
	if avg[0] != 3 || avg[1] != 10 {
		t.Errorf("avg = %v, want [3 10]", avg)
	}
	max, err := StaticAllocation(history, true)
	if err != nil {
		t.Fatal(err)
	}
	if max[0] != 4 || max[1] != 20 {
		t.Errorf("max = %v, want [4 20]", max)
	}
	if _, err := StaticAllocation(nil, false); err == nil {
		t.Error("empty history accepted")
	}
	if _, err := StaticAllocation([][]int{{1}, {1, 2}}, false); err == nil {
		t.Error("ragged history accepted")
	}
}

func TestCompileErrorPaths(t *testing.T) {
	dev := gpusim.V100()
	features, _, batch, _ := testModel(t, 32, 45)
	choices := heterogeneousChoices()
	if _, err := Compile(dev, nil, nil, batch, Options{}); err == nil {
		t.Error("no features accepted")
	}
	if _, err := Compile(dev, features, choices[:2], batch, Options{}); err == nil {
		t.Error("choice count mismatch accepted")
	}
	if _, err := Compile(dev, features, choices, batch, Options{Mapping: MapStaticAvg}); err == nil {
		t.Error("static mapping without StaticBlocks accepted")
	}
	// Unsupported schedule: thread-per-sample on dim 128.
	badChoices := append([]sched.Schedule{}, choices...)
	badChoices[3] = sched.ThreadPerSample{Threads: 256, Unroll: 1}
	if _, err := Compile(dev, features, badChoices, batch, Options{}); err == nil {
		t.Error("unsupported schedule accepted")
	}
	// Occupancy target beyond warp slots.
	if _, err := Compile(dev, features, choices, batch, Options{TargetBlocksPerSM: 32}); err == nil {
		t.Error("unreachable occupancy target accepted")
	}
}

func TestExecuteErrorPaths(t *testing.T) {
	fu, tables, batch, _ := compileRuntime(t, Options{})
	if _, err := fu.Execute(tables[:2], batch); err == nil {
		t.Error("table count mismatch accepted")
	}
	short := &embedding.Batch{Features: batch.Features[:2]}
	if _, err := fu.Execute(tables, short); err == nil {
		t.Error("batch feature count mismatch accepted")
	}
}

func TestUniqueScheduleSharing(t *testing.T) {
	dev := gpusim.V100()
	cfg := &datasynth.ModelConfig{Name: "share", Seed: 3, Features: []datasynth.FeatureSpec{
		{Name: "a", Dim: 8, Rows: 128, PF: datasynth.Fixed{K: 2}, Coverage: 1},
		{Name: "b", Dim: 8, Rows: 128, PF: datasynth.Fixed{K: 2}, Coverage: 1},
		{Name: "c", Dim: 16, Rows: 128, PF: datasynth.Fixed{K: 2}, Coverage: 1},
	}}
	rng := rand.New(rand.NewSource(3))
	batch, err := datasynth.GenerateBatch(cfg, 16, rng)
	if err != nil {
		t.Fatal(err)
	}
	features := []FeatureInfo{
		{Name: "a", Dim: 8, TableRows: 128, Pool: embedding.PoolSum},
		{Name: "b", Dim: 8, TableRows: 128, Pool: embedding.PoolSum},
		{Name: "c", Dim: 16, TableRows: 128, Pool: embedding.PoolSum},
	}
	same := sched.SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1}
	fu, err := Compile(dev, features, []sched.Schedule{same, same, same}, batch, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// a and b share (same schedule, same dim); c differs by dim.
	if fu.UniqueSchedules != 2 {
		t.Errorf("UniqueSchedules = %d, want 2", fu.UniqueSchedules)
	}
}

func TestRunCombinesSimAndExecute(t *testing.T) {
	fu, tables, batch, features := compileRuntime(t, Options{})
	outs, res, err := fu.Run(tables, batch)
	if err != nil {
		t.Fatal(err)
	}
	if res.Time <= 0 {
		t.Error("simulated time must be positive")
	}
	if len(outs) != len(features) {
		t.Errorf("%d outputs for %d features", len(outs), len(features))
	}
	// Per-feature time accounting covers all features.
	for f := range features {
		if res.TagTime[f] <= 0 {
			t.Errorf("feature %d has no accounted time", f)
		}
	}
}

func TestMappingModeString(t *testing.T) {
	if MapRuntime.String() != "runtime" || MapStaticAvg.String() != "static-avg" || MapStaticMax.String() != "static-max" {
		t.Error("MappingMode strings wrong")
	}
}

func TestWorkingSetBytes(t *testing.T) {
	features := []FeatureInfo{{Dim: 8, TableRows: 100}, {Dim: 4, TableRows: 10}}
	ws := []sched.Workload{
		{Dim: 8, BatchSize: 1, PF: []int{5}, TotalRows: 5, UniqueRows: 5},
		{Dim: 4, BatchSize: 1, PF: []int{100}, TotalRows: 100, UniqueRows: 50}, // capped by table
	}
	got := WorkingSetBytes(features, ws)
	want := 5.0*32 + 10*16 // feature 1 capped at table size
	if got != want {
		t.Errorf("WorkingSetBytes = %g, want %g", got, want)
	}
}
