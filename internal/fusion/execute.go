package fusion

import (
	"fmt"

	"repro/internal/embedding"
	"repro/internal/gpusim"
)

// Execute functionally computes the fused kernel's outputs: one pooled
// [batch*dim] buffer per feature. It walks the task map exactly as the GPU
// would — block by block, each block resolving its feature and relative index
// — so the exact-cover property of the mapping is what makes the result
// correct, for runtime and static mappings alike.
func (fu *Fused) Execute(tables []*embedding.Table, batch *embedding.Batch) ([][]float32, error) {
	if len(tables) != len(fu.Features) {
		return nil, fmt.Errorf("fusion: %d tables for %d features", len(tables), len(fu.Features))
	}
	if len(batch.Features) != len(fu.Features) {
		return nil, fmt.Errorf("fusion: batch has %d features, kernel %d", len(batch.Features), len(fu.Features))
	}
	outs := make([][]float32, len(fu.Features))
	for f := range fu.Features {
		if tables[f].Dim != fu.Features[f].Dim {
			return nil, fmt.Errorf("fusion: feature %d: table dim %d != %d", f, tables[f].Dim, fu.Features[f].Dim)
		}
		outs[f] = make([]float32, batch.BatchSize()*fu.Features[f].Dim)
	}
	for i := 0; i < fu.Map.NumBlocks(); i++ {
		f := int(fu.Map.Feature[i])
		rel := int(fu.Map.Rel[i])
		needed := int(fu.Map.Needed[f])
		alloc := int(fu.Map.Allocated[f])
		if alloc == needed {
			fu.Plans[f].ExecuteBlock(rel, tables[f], &batch.Features[f], fu.Features[f].Pool, outs[f])
			continue
		}
		// Mirror the static-mapping fold: block rel owns the contiguous
		// plan-block chunk [rel*q, (rel+1)*q).
		q := (needed + alloc - 1) / alloc
		for j := rel * q; j < (rel+1)*q && j < needed; j++ {
			fu.Plans[f].ExecuteBlock(j, tables[f], &batch.Features[f], fu.Features[f].Pool, outs[f])
		}
	}
	return outs, nil
}

// Run simulates the kernel and computes its outputs in one call.
func (fu *Fused) Run(tables []*embedding.Table, batch *embedding.Batch) ([][]float32, *gpusim.SimResult, error) {
	res, err := fu.Simulate()
	if err != nil {
		return nil, nil, err
	}
	outs, err := fu.Execute(tables, batch)
	if err != nil {
		return nil, nil, err
	}
	return outs, res, nil
}

// ReferenceOutputs computes the ground-truth outputs with the CPU reference
// executor, for verification.
func ReferenceOutputs(features []FeatureInfo, tables []*embedding.Table, batch *embedding.Batch) ([][]float32, error) {
	if len(tables) != len(features) || len(batch.Features) != len(features) {
		return nil, fmt.Errorf("fusion: shape mismatch: %d features, %d tables, %d batch features",
			len(features), len(tables), len(batch.Features))
	}
	outs := make([][]float32, len(features))
	for f := range features {
		out, err := embedding.PoolCPU(tables[f], &batch.Features[f], features[f].Pool)
		if err != nil {
			return nil, fmt.Errorf("fusion: feature %d: %w", f, err)
		}
		outs[f] = out
	}
	return outs, nil
}
