package recflex

// This file exposes the Discussion-section (§VII) extensions through the
// public API: multi-GPU table placement, the UVM hot-embedding cache,
// preprocess-operator fusion, intra-feature hybrid schedules, and the
// online-serving trace substrate.

import (
	"repro/internal/dnn"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/preproc"
	"repro/internal/sched"
	"repro/internal/trace"
	"repro/internal/uvmcache"
)

// HybridSplit routes heavy samples to a block-per-sample schedule and light
// samples to a sub-warp schedule — intra-feature heterogeneity.
type HybridSplit = sched.HybridSplit

// --- Multi-GPU placement ---

// Placement maps features to GPUs.
type Placement = placement.Placement

// PlacementStats is the per-feature workload summary placement uses.
type PlacementStats = placement.Stats

// PlacementStrategy selects a placement heuristic.
type PlacementStrategy = placement.Strategy

// Placement strategies.
const (
	PlaceLPT          = placement.LPT
	PlaceRoundRobin   = placement.RoundRobin
	PlaceCapacityOnly = placement.CapacityOnly
)

// MultiGPU runs one tuned RecFlex instance per device shard.
type MultiGPU = placement.MultiGPU

// CollectPlacementStats derives placement stats from historical batches.
func CollectPlacementStats(features []FeatureInfo, batches []*Batch) ([]PlacementStats, error) {
	return placement.CollectStats(features, batches)
}

// Place assigns features to GPUs under a memory capacity (0 = unlimited).
func Place(stats []PlacementStats, numGPUs int, capacityBytes int64, strategy PlacementStrategy) (*Placement, error) {
	return placement.Place(stats, numGPUs, capacityBytes, strategy)
}

// NewMultiGPU creates per-shard RecFlex instances.
func NewMultiGPU(dev *Device, features []FeatureInfo, p *Placement) (*MultiGPU, error) {
	return placement.NewMultiGPU(dev, features, p)
}

// --- UVM hot-embedding cache ---

// CacheConfig keeps the leading HotRows rows of a table GPU-resident.
type CacheConfig = uvmcache.Config

// CachedSchedule decorates an inner schedule with UVM cost accounting.
type CachedSchedule = uvmcache.Cached

// AllocateCacheBudget distributes GPU embedding memory across features by
// access frequency per byte.
func AllocateCacheBudget(features []FeatureInfo, accessFreq []float64, budgetBytes int64) ([]CacheConfig, error) {
	return uvmcache.AllocateBudget(features, accessFreq, budgetBytes)
}

// ColdFraction measures the share of a batch's row reads that miss the hot
// set.
func ColdFraction(fb *FeatureBatch, cfg CacheConfig) float64 {
	return uvmcache.ColdFraction(fb, cfg)
}

// --- Preprocess-operator fusion ---

// PreprocOp transforms the lookup-ID stream of a feature.
type PreprocOp = preproc.Op

// Preprocess operators.
type (
	// HashMod maps raw IDs into the table space.
	HashMod = preproc.HashMod
	// Clip truncates pooling factors.
	Clip = preproc.Clip
	// Dedup removes within-sample duplicate IDs.
	Dedup = preproc.Dedup
)

// ApplyPreproc runs an operator pipeline over one feature batch.
func ApplyPreproc(ops []PreprocOp, fb *FeatureBatch, tableRows int) (FeatureBatch, error) {
	return preproc.ApplyAll(ops, fb, tableRows)
}

// --- Training ---

// MLP is the dense tower of the recommendation model.
type MLP = dnn.MLP

// NewMLP builds a dense tower with deterministic weights.
func NewMLP(inDim int, hidden []int, seed uint64) (*MLP, error) {
	return dnn.NewMLP(inDim, hidden, seed)
}

// Trainer runs full-model SGD steps through the fused kernels: embedding
// forward, MLP forward, MSE loss, MLP backward, fused embedding backward.
type Trainer = model.Trainer

// TrainStepResult reports one training step (loss + simulated stage times).
type TrainStepResult = model.StepResult

// NewTrainer wires a tuned Optimizer, its tables and a dense tower.
func NewTrainer(opt *Optimizer, tables []*Table, mlp *MLP, lr float32) (*Trainer, error) {
	return model.NewTrainer(opt, tables, mlp, lr)
}

// --- Online serving traces ---

// Request is one inference request in a serving trace.
type Request = trace.Request

// TraceConfig shapes a generated request stream.
type TraceConfig = trace.GeneratorConfig

// ServeResult summarizes a served trace (latency percentiles, utilization).
type ServeResult = trace.Result

// GenerateTrace produces a Poisson request stream with long-tail batches.
func GenerateTrace(n int, cfg TraceConfig) ([]Request, error) {
	return trace.Generate(n, cfg)
}

// ServeTrace replays requests through a per-size service function on a FIFO
// single-GPU queue.
func ServeTrace(reqs []Request, service func(size int) (float64, error)) (*ServeResult, error) {
	return trace.Serve(reqs, service)
}
