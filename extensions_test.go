package recflex_test

import (
	"math/rand"
	"testing"

	recflex "repro"
)

func TestPublicMultiGPU(t *testing.T) {
	features, tables, makeBatch := buildToyModel(t)
	batch := makeBatch(128)
	stats, err := recflex.CollectPlacementStats(features, []*recflex.Batch{batch})
	if err != nil {
		t.Fatal(err)
	}
	p, err := recflex.Place(stats, 2, 0, recflex.PlaceLPT)
	if err != nil {
		t.Fatal(err)
	}
	m, err := recflex.NewMultiGPU(recflex.V100(), features, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Tune([]*recflex.Batch{batch}, recflex.TuneOptions{Occupancies: []int{4, 8}, Parallelism: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := m.Measure(makeBatch(64))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total() <= 0 {
		t.Error("non-positive multi-GPU time")
	}
	_ = tables
}

func TestPublicPreprocAndCache(t *testing.T) {
	_, _, makeBatch := buildToyModel(t)
	batch := makeBatch(32)
	fb := batch.Features[3] // the heavy multi-hot feature
	out, err := recflex.ApplyPreproc([]recflex.PreprocOp{
		recflex.HashMod{Seed: 1},
		recflex.Clip{MaxPF: 10},
		recflex.Dedup{},
	}, &fb, 100)
	if err != nil {
		t.Fatal(err)
	}
	if out.BatchSize() != fb.BatchSize() {
		t.Error("preproc changed batch size")
	}
	for s := 0; s < out.BatchSize(); s++ {
		if out.PoolingFactor(s) > 10 {
			t.Errorf("sample %d not clipped: pf %d", s, out.PoolingFactor(s))
		}
	}
	cold := recflex.ColdFraction(&out, recflex.CacheConfig{HotRows: 50})
	if cold < 0 || cold > 1 {
		t.Errorf("cold fraction %g", cold)
	}
}

func TestPublicServingTrace(t *testing.T) {
	reqs, err := recflex.GenerateTrace(100, recflex.TraceConfig{
		QPS: 1000, MaxBatch: 256, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	res, err := recflex.ServeTrace(reqs, func(size int) (float64, error) {
		return float64(size)*1e-8 + rng.Float64()*1e-7, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.P99 < res.P50 {
		t.Error("percentiles disordered")
	}
}

func TestPublicHybridSchedule(t *testing.T) {
	h := recflex.HybridSplit{
		Light:       recflex.SubWarp{Threads: 256, Lanes: 8, Vec: 1, UnrollRows: 1},
		Heavy:       recflex.BlockPerSample{Threads: 128, Vec: 1},
		ThresholdPF: 32,
	}
	if h.Name() == "" {
		t.Error("hybrid has no name")
	}
	if h.Resources(8).ThreadsPerBlock != 256 {
		t.Error("hybrid resource union wrong")
	}
}

func TestPublicTrainer(t *testing.T) {
	features, tables, makeBatch := buildToyModel(t)
	dev := recflex.V100()
	opt := recflex.New(dev, features)
	if err := opt.Tune([]*recflex.Batch{makeBatch(96)}, recflex.TuneOptions{Occupancies: []int{4, 8}}); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, f := range features {
		total += f.Dim
	}
	mlp, err := recflex.NewMLP(total, []int{8, 2}, 3)
	if err != nil {
		t.Fatal(err)
	}
	trainer, err := recflex.NewTrainer(opt, tables, mlp, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	batch := makeBatch(8)
	rng := rand.New(rand.NewSource(9))
	targets := make([]float32, 8*2)
	for i := range targets {
		targets[i] = float32(rng.NormFloat64())
	}
	var prev float64
	for step := 0; step < 3; step++ {
		res, err := trainer.Step(batch, targets)
		if err != nil {
			t.Fatal(err)
		}
		if step > 0 && res.Loss >= prev {
			t.Fatalf("loss did not decrease: %g -> %g", prev, res.Loss)
		}
		prev = res.Loss
	}
}
