// Command recflex-serve replays an online-serving request trace (Poisson
// arrivals, serving-sized batches, optional unsplit long-tail requests)
// through every embedding system and reports end-to-end latency percentiles —
// the served-workload view of the paper's §VI-D discussion.
//
// Usage:
//
//	recflex-serve -model A -scale 25 -requests 200 -qps 2000 -tail 0.02
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-serve: ")
	var (
		model    = flag.String("model", "A", "model: A,B,C,D,E,mlperf")
		device   = flag.String("device", "V100", "device: V100 or A100")
		scale    = flag.Int("scale", 25, "feature-count divisor")
		requests = flag.Int("requests", 200, "requests in the trace")
		qps      = flag.Float64("qps", 2000, "mean arrival rate")
		tailProb = flag.Float64("tail", 0.02, "probability of an unsplit 2560-sample request")
	)
	flag.Parse()

	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(), "mlperf": datasynth.MLPerfLike(),
	}
	cfg, ok := configs[*model]
	if !ok {
		log.Fatalf("unknown model %q", *model)
	}
	cfg = datasynth.Scaled(cfg, *scale)
	var dev *gpusim.Device
	switch *device {
	case "V100":
		dev = gpusim.V100()
	case "A100":
		dev = gpusim.A100()
	default:
		log.Fatalf("unknown device %q", *device)
	}
	features := experiments.Features(cfg)

	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		historical = append(historical, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		log.Fatal(err)
	}

	reqs, err := trace.Generate(*requests, trace.GeneratorConfig{
		QPS: *qps, MaxBatch: 512, TailProb: *tailProb,
		TailSize: datasynth.LongTailRequest, Seed: cfg.Seed ^ 0x5E17E,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d requests at %.0f qps on %s/%s (%d features, %.1f%% long tail)\n\n",
		len(reqs), *qps, dev.Name, cfg.Name, len(features), *tailProb*100)

	systems := append(baselines.All(), rf)
	tbl := &report.Table{
		Title:  "end-to-end request latency",
		Header: []string{"System", "p50", "p95", "p99", "GPU util"},
	}
	for _, sys := range systems {
		if sys.Supports(features) != nil {
			continue
		}
		service := trace.MemoService(func(size int) (float64, error) {
			size = (size + 31) / 32 * 32 // quantize for the memo
			b, err := datasynth.GenerateBatch(cfg, size, rng)
			if err != nil {
				return 0, err
			}
			return sys.Measure(dev, features, b)
		})
		res, err := trace.Serve(reqs, service)
		if err != nil {
			log.Fatalf("%s: %v", sys.Name(), err)
		}
		tbl.AddRow(sys.Name(), report.FmtUS(res.P50), report.FmtUS(res.P95),
			report.FmtUS(res.P99), fmt.Sprintf("%.1f%%", res.Utilization*100))
	}
	if err := tbl.Write(log.Writer()); err != nil {
		log.Fatal(err)
	}
}
