// Command recflex-serve replays an online-serving request trace (Poisson
// arrivals, serving-sized batches, optional unsplit long-tail requests)
// through every embedding system and reports end-to-end latency — the
// served-workload view of the paper's §VI-D discussion, now driven by the
// concurrent serving engine: k simulated GPUs behind a bounded admission
// queue, per-request deadlines with shed/timeout accounting, split-at-cap
// degradation of long-tail requests, and a latency histogram plus
// per-worker utilization for the tuned system.
//
// Fairness: every system is measured on the identical batch for a given
// request size. Batches are pre-generated once per quantized size, seeded
// from (model seed, size) alone, so no system's measurement order can
// perturb another's inputs.
//
// With -models the command switches to fleet mode: each listed model is
// tuned independently and the merged multi-tenant trace is replayed over one
// shared simulated GPU pool (internal/fleet), with -tenants, -policy and
// -placement shaping admission and placement. -policy weighted-fair with
// -weights gives each priority class a guaranteed dispatch share
// (deficit-round-robin) instead of strict starvation-prone priority;
// -rebalance re-partitions workers from recorded load history; -degrade
// split-tail arms the pool's split-at-cap fallback for long-tail requests.
// The report splits latency, shed counts and interference per model and per
// tenant.
//
// The fleet pool is elastic and heterogeneous on request: -preempt lets a
// queued split chunk yield its dispatch slot to a strictly higher-priority
// whole request at a chunk boundary; -reserve pins per-model exclusive worker
// floors (background re-tunes land on the reserved spares); -worker-classes
// mixes simulated V100- and A100-class workers, with every model tuned on the
// first class and speed-probed on the rest; -autoscale-max lets the pool grow
// toward demand (with -autoscale-lag boot cost, -autoscale-class device
// class) and drain idle workers back. All of it is built from flags alone, so
// recorded gateway sessions still replay bit-identically.
//
// -cache-budget arms the shared embedding-cache tier (internal/emcache) under
// the pool: every dispatched batch's cold rows are charged to its service
// time through the PCIe fault model, fills warm the tier, and -cache-policy
// (static, lru, clock) with -cache-retier shapes how residency follows the
// traffic. The tier is built from the model configs and flags alone, so
// recorded gateway sessions keep replaying bit-identically — cache state and
// counters included — in -replay-session runs.
//
// Usage:
//
//	recflex-serve -model A -scale 25 -requests 200 -qps 2000 -tail 0.02 \
//	    -gpus 2 -deadline 1.5 -queue 64
//	recflex-serve -models A,C -tenants "interactive:1,bulk:0:8" \
//	    -policy priority-edf -placement spread -gpus 2 -queue 32
//	recflex-serve -models A,C -tenants "interactive:1,bulk:0" \
//	    -policy weighted-fair -weights "1:3,0:1" -rebalance 0.05 -gpus 2 -queue 32
//	recflex-serve -models A,C -tenants "interactive:1,bulk:0" -gpus 2 \
//	    -worker-classes V100,V100 -autoscale-max 4 -autoscale-class A100 \
//	    -preempt -degrade split-tail -deadline 1.5
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"reflect"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/emcache"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/fusion"
	"repro/internal/gateway"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// sizeQuantum is the measurement grid: request sizes round up to this
// multiple so the per-size batch table and service memo stay small.
const sizeQuantum = 32

// splitCap is the serving split threshold (512 in the paper): requests
// above it are unsplit long-tail batches eligible for the split-at-cap
// degradation fallback.
const splitCap = 512

// quantize rounds a request size up to the measurement grid.
func quantize(size int) int {
	return (size + sizeQuantum - 1) / sizeQuantum * sizeQuantum
}

// options is the parsed flag set of one invocation.
type options struct {
	model, device     string
	scale, requests   int
	qps, tailProb     float64
	gpus, queue       int
	deadline          float64
	drift, driftAt    float64
	canary            int
	margin            float64
	degrade           string
	models, tenants   string
	policy, placement string
	shedFraction      float64
	weights           string
	rebalance         float64

	cacheBudget float64
	cachePolicy string
	cacheRetier float64

	preempt       bool
	reserve       string
	workerClasses string
	autoMax       int
	autoEvery     float64
	autoLag       float64
	autoClass     string

	listen        string
	warp          float64
	serveDur      float64
	session       string
	replaySession string
}

// parseFlags binds the flag set to an options struct. Usage and parse errors
// go to w, so tests never write to the process stderr.
func parseFlags(args []string, w io.Writer) (*options, error) {
	var o options
	fs := flag.NewFlagSet("recflex-serve", flag.ContinueOnError)
	fs.SetOutput(w)
	fs.StringVar(&o.model, "model", "A", "model: A,B,C,D,E,mlperf")
	fs.StringVar(&o.device, "device", "V100", "device: V100 or A100")
	fs.IntVar(&o.scale, "scale", 25, "feature-count divisor")
	fs.IntVar(&o.requests, "requests", 200, "requests in the trace (per model in fleet mode)")
	fs.Float64Var(&o.qps, "qps", 2000, "mean arrival rate (per model in fleet mode)")
	fs.Float64Var(&o.tailProb, "tail", 0.02, "probability of an unsplit 2560-sample request")
	fs.IntVar(&o.gpus, "gpus", 1, "simulated GPU workers")
	fs.IntVar(&o.queue, "queue", 0, "admission queue bound (0 = unbounded)")
	fs.Float64Var(&o.deadline, "deadline", 0, "per-request deadline in milliseconds (0 = none)")
	fs.Float64Var(&o.drift, "drift", 0, "mid-trace pooling-factor scale (0 = steady workload); switches to the continuous serving loop with online re-tuning")
	fs.Float64Var(&o.driftAt, "drift-at", 0.33, "fraction of the trace after which the drift lands")
	fs.IntVar(&o.canary, "canary", 0, "guard each hot-swap with a canary window of this many completions (0 = unguarded)")
	fs.Float64Var(&o.margin, "rollback-margin", 0.1, "fractional degradation the canary tolerates before rolling a swap back")
	fs.StringVar(&o.degrade, "degrade", "", "degradation policy: split-tail, serve-all or shed (default split-tail; fleet mode serve-all)")
	fs.StringVar(&o.models, "models", "", "comma-separated model list (e.g. A,C) — switches to fleet mode over a shared GPU pool")
	fs.StringVar(&o.tenants, "tenants", "", "fleet tenants, comma-separated name:priority[:quota[:deadline_ms]] entries")
	fs.StringVar(&o.policy, "policy", "priority-edf", "fleet admission policy: priority-edf, weighted-fair or fifo")
	fs.StringVar(&o.placement, "placement", "packed", "fleet placement: packed, spread or dedicated")
	fs.Float64Var(&o.shedFraction, "shed-fraction", 0, "fleet load shedding: shed sub-top-priority arrivals once the queue is this full (0 disables)")
	fs.StringVar(&o.weights, "weights", "", "weighted-fair dispatch weights, comma-separated priority:weight pairs (e.g. 1:3,0:1); unlisted classes weigh 1")
	fs.Float64Var(&o.rebalance, "rebalance", 0, "fleet: re-partition workers from load history at most every this many seconds (0 disables)")
	fs.Float64Var(&o.cacheBudget, "cache-budget", 0, "fleet: shared embedding-cache tier budget in MiB (0 disables the tier)")
	fs.StringVar(&o.cachePolicy, "cache-policy", "static", "fleet cache eviction policy: static, lru or clock")
	fs.Float64Var(&o.cacheRetier, "cache-retier", 0, "fleet cache: re-allocate the budget from windowed heat at most every this many simulated seconds (0 disables)")
	fs.BoolVar(&o.preempt, "preempt", false, "fleet: chunk-boundary preemption — a queued split chunk yields its dispatch slot to a strictly higher-priority whole request")
	fs.StringVar(&o.reserve, "reserve", "", "fleet: per-model exclusive worker floors, comma-separated counts aligned with -models (e.g. 1,0)")
	fs.StringVar(&o.workerClasses, "worker-classes", "", "fleet: per-worker device classes, comma-separated names aligned with -gpus (e.g. V100,A100); models tune on the first class and are speed-probed on the others")
	fs.IntVar(&o.autoMax, "autoscale-max", 0, "fleet: let the pool grow to this many workers and shrink back on demand (0 disables autoscaling)")
	fs.Float64Var(&o.autoEvery, "autoscale-every", 0.005, "fleet autoscale: decision pacing in simulated seconds")
	fs.Float64Var(&o.autoLag, "autoscale-lag", 0, "fleet autoscale: simulated boot lag before a scaled-out worker's first dispatch, in seconds")
	fs.StringVar(&o.autoClass, "autoscale-class", "", "fleet autoscale: device class of scaled-out workers (needs -worker-classes; default the first class)")
	fs.StringVar(&o.listen, "listen", "", "serve live inference over HTTP on this address (gateway mode; needs -models)")
	fs.Float64Var(&o.warp, "warp", 1000, "gateway time-warp factor: simulated seconds per wall-clock second")
	fs.Float64Var(&o.serveDur, "serve-duration", 0, "gateway: stop after this many wall seconds (0 = run until interrupted)")
	fs.StringVar(&o.session, "session", "", "gateway: record the admitted request stream and outcomes to this session log")
	fs.StringVar(&o.replaySession, "replay-session", "", "replay a recorded session log through an identically built pool and verify it bit-identically")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	// Reject nonsense at the flag boundary: a zero-worker pool or a negative
	// queue bound would otherwise surface as a confusing engine error (or,
	// worse, an all-shed table that reads like a result).
	if o.gpus <= 0 {
		return nil, fmt.Errorf("-gpus must be positive, got %d", o.gpus)
	}
	if o.queue < 0 {
		return nil, fmt.Errorf("-queue must be >= 0 (0 = unbounded), got %d", o.queue)
	}
	if o.requests <= 0 {
		return nil, fmt.Errorf("-requests must be positive, got %d", o.requests)
	}
	if o.scale <= 0 {
		return nil, fmt.Errorf("-scale must be positive, got %d", o.scale)
	}
	if o.qps <= 0 {
		return nil, fmt.Errorf("-qps must be positive, got %g", o.qps)
	}
	if !(o.warp > 0) || math.IsInf(o.warp, 0) {
		return nil, fmt.Errorf("-warp must be positive and finite, got %g", o.warp)
	}
	if o.serveDur < 0 {
		return nil, fmt.Errorf("-serve-duration must be >= 0, got %g", o.serveDur)
	}
	// Cache-tier flags: every rejection happens here at the flag boundary, not
	// after minutes of model tuning inside buildFleetSetup.
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if set["cache-budget"] && (!(o.cacheBudget > 0) || math.IsInf(o.cacheBudget, 0)) {
		return nil, fmt.Errorf("-cache-budget must be positive and finite MiB, got %g", o.cacheBudget)
	}
	if _, err := emcache.ParsePolicy(o.cachePolicy); err != nil {
		return nil, fmt.Errorf("-cache-policy: %v", err)
	}
	if o.cacheRetier < 0 {
		return nil, fmt.Errorf("-cache-retier must be >= 0, got %g", o.cacheRetier)
	}
	if (set["cache-budget"] || set["cache-policy"] || set["cache-retier"]) && o.models == "" {
		return nil, fmt.Errorf("the embedding-cache tier is a shared-pool feature; -cache-budget/-cache-policy/-cache-retier need fleet mode (-models)")
	}
	if (set["cache-policy"] || set["cache-retier"]) && !(o.cacheBudget > 0) {
		return nil, fmt.Errorf("-cache-policy/-cache-retier shape a tier that -cache-budget never creates; set -cache-budget > 0")
	}
	// Pool-shaping flags are fleet-only: outside fleet mode they would be
	// silently dead configuration that reads like it took effect. Same bar as
	// the cache flags — reject at the flag boundary, before any tuning.
	if o.models == "" {
		for _, f := range []string{
			"tenants", "policy", "placement", "shed-fraction", "weights", "rebalance",
			"preempt", "reserve", "worker-classes",
			"autoscale-max", "autoscale-every", "autoscale-lag", "autoscale-class",
		} {
			if set[f] {
				return nil, fmt.Errorf("-%s shapes the shared fleet pool; it needs fleet mode (-models)", f)
			}
		}
	}
	nModels := 0
	if o.models != "" {
		nModels = len(strings.Split(o.models, ","))
	}
	if set["weights"] && o.policy != "weighted-fair" {
		return nil, fmt.Errorf("-weights only shapes weighted-fair dispatch (got -policy %s); pass -policy weighted-fair", o.policy)
	}
	if o.rebalance < 0 {
		return nil, fmt.Errorf("-rebalance must be >= 0, got %g", o.rebalance)
	}
	if o.rebalance > 0 && o.gpus < nModels {
		return nil, fmt.Errorf("-rebalance needs at least one worker per model to repartition (%d gpus, %d models)", o.gpus, nModels)
	}
	// Elastic-pool flags interlock: reservations and autoscaling both pin the
	// pool's shape, which the load rebalancer would fight over.
	if set["reserve"] {
		if o.placement == "dedicated" {
			return nil, fmt.Errorf("-reserve needs packed or spread placement (dedicated already partitions the pool)")
		}
		if set["rebalance"] {
			return nil, fmt.Errorf("-reserve and -rebalance are mutually exclusive: the load rebalancer does not honor reservation floors")
		}
		res, err := parseReserve(o.reserve, nModels)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, r := range res {
			total += r
		}
		if total > o.gpus {
			return nil, fmt.Errorf("-reserve pins %d workers but the pool has only %d", total, o.gpus)
		}
		if total == o.gpus {
			for i, r := range res {
				if r == 0 {
					return nil, fmt.Errorf("-reserve leaves no shared workers and model %d reserves none; it could never dispatch", i)
				}
			}
		}
	}
	if o.autoMax < 0 {
		return nil, fmt.Errorf("-autoscale-max must be >= 0 (0 disables autoscaling), got %d", o.autoMax)
	}
	if (set["autoscale-every"] || set["autoscale-lag"] || set["autoscale-class"]) && o.autoMax == 0 {
		return nil, fmt.Errorf("-autoscale-every/-autoscale-lag/-autoscale-class shape an autoscaler that -autoscale-max never creates; set -autoscale-max > 0")
	}
	if o.autoMax > 0 {
		if o.autoMax < o.gpus {
			return nil, fmt.Errorf("-autoscale-max %d below the initial -gpus %d", o.autoMax, o.gpus)
		}
		if set["rebalance"] {
			return nil, fmt.Errorf("-autoscale-max and -rebalance are mutually exclusive: the autoscaler owns the pool's shape")
		}
		if o.placement == "dedicated" {
			return nil, fmt.Errorf("-autoscale-max needs packed or spread placement (a dedicated partition has no shared workers to grow)")
		}
		if !(o.autoEvery > 0) || math.IsInf(o.autoEvery, 0) {
			return nil, fmt.Errorf("-autoscale-every must be positive and finite seconds, got %g", o.autoEvery)
		}
		if o.autoLag < 0 || math.IsNaN(o.autoLag) || math.IsInf(o.autoLag, 0) {
			return nil, fmt.Errorf("-autoscale-lag must be finite and >= 0, got %g", o.autoLag)
		}
	}
	if set["worker-classes"] {
		if set["device"] {
			return nil, fmt.Errorf("-worker-classes assigns each worker's device; drop the explicit -device")
		}
		classes, _, err := parseWorkerClasses(o.workerClasses)
		if err != nil {
			return nil, err
		}
		if len(classes) != o.gpus {
			return nil, fmt.Errorf("-worker-classes lists %d classes for %d gpus (one per worker)", len(classes), o.gpus)
		}
	}
	if set["autoscale-class"] {
		if !set["worker-classes"] {
			return nil, fmt.Errorf("-autoscale-class selects a device class for a heterogeneous pool; pass -worker-classes too")
		}
		if _, err := classDevice(o.autoClass); err != nil {
			return nil, fmt.Errorf("-autoscale-class: %v", err)
		}
	}
	return &o, nil
}

// classDevice resolves one -worker-classes entry to its simulated device.
func classDevice(name string) (*gpusim.Device, error) {
	switch name {
	case "V100":
		return gpusim.V100(), nil
	case "A100":
		return gpusim.A100(), nil
	}
	return nil, fmt.Errorf("unknown device class %q (want V100 or A100)", name)
}

// parseWorkerClasses decodes the -worker-classes flag: one device-class name
// per worker. Distinct names index the pool's class list in first-appearance
// order, so "V100,V100,A100" yields classes [0,0,1] and names [V100,A100].
func parseWorkerClasses(s string) ([]int, []string, error) {
	var classes []int
	var names []string
	idx := make(map[string]int)
	for _, entry := range strings.Split(s, ",") {
		name := strings.TrimSpace(entry)
		if _, err := classDevice(name); err != nil {
			return nil, nil, fmt.Errorf("-worker-classes: %v", err)
		}
		c, ok := idx[name]
		if !ok {
			c = len(names)
			idx[name] = c
			names = append(names, name)
		}
		classes = append(classes, c)
	}
	return classes, names, nil
}

// parseReserve decodes the -reserve flag: one exclusive-worker count per
// -models entry, in order.
func parseReserve(s string, models int) ([]int, error) {
	parts := strings.Split(s, ",")
	if len(parts) != models {
		return nil, fmt.Errorf("-reserve lists %d counts for %d models (one comma-separated count per -models entry)", len(parts), models)
	}
	out := make([]int, models)
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return nil, fmt.Errorf("-reserve: bad count %q (want an integer >= 0)", strings.TrimSpace(p))
		}
		out[i] = n
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-serve: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags in, report out,
// every failure — including a trace that admits zero requests — surfaces as
// an error (and a non-zero exit) instead of a table of zero-value metrics.
func run(args []string, w io.Writer) error {
	o, err := parseFlags(args, w)
	if err != nil {
		return err
	}
	if o.replaySession != "" {
		return runReplaySession(o, w)
	}
	if o.listen != "" {
		return runGateway(o, w)
	}
	if o.models != "" {
		return runFleet(o, w)
	}

	cfg, dev, err := modelDevice(o.model, o.device, o.scale)
	if err != nil {
		return err
	}
	features := experiments.Features(cfg)
	rf, err := tuneModel(cfg, dev, features)
	if err != nil {
		return err
	}

	reqs, err := trace.Generate(o.requests, trace.GeneratorConfig{
		QPS: o.qps, MaxBatch: splitCap, TailProb: o.tailProb,
		TailSize: datasynth.LongTailRequest, Seed: cfg.Seed ^ 0x5E17E,
	})
	if err != nil {
		return err
	}
	policy := trace.DegradeSplitTail
	if o.degrade != "" {
		if policy, err = trace.ParseDegradePolicy(o.degrade); err != nil {
			return err
		}
	}
	srvCfg := trace.ServerConfig{
		Workers:    o.gpus,
		QueueDepth: o.queue,
		Deadline:   o.deadline * 1e-3,
		SplitCap:   splitCap,
		Policy:     policy,
	}
	if o.drift > 0 {
		fmt.Fprintf(w, "continuous serving: %d requests at %.0f qps on %dx %s/%s (%d features, %.1f%% long tail)\n",
			len(reqs), o.qps, o.gpus, dev.Name, cfg.Name, len(features), o.tailProb*100)
		return runDrift(w, rf, cfg, reqs, srvCfg, o.drift, o.driftAt, o.canary, o.margin)
	}
	batches, err := prebuildBatches(cfg, reqs)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "serving %d requests at %.0f qps on %dx %s/%s (%d features, %.1f%% long tail, %d shared batches)\n\n",
		len(reqs), o.qps, o.gpus, dev.Name, cfg.Name, len(features), o.tailProb*100, len(batches))
	systems := append(baselines.All(), rf)
	tbl := &report.Table{
		Title:  "end-to-end request latency",
		Header: []string{"System", "p50", "p95", "p99", "GPU util", "shed", "timeout"},
	}
	var rfMetrics *trace.Metrics
	for _, sys := range systems {
		if sys.Supports(features) != nil {
			continue
		}
		srv, err := trace.NewServer(srvCfg, serviceFor(sys, dev, features, batches))
		if err != nil {
			return err
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			return fmt.Errorf("%s: %v", sys.Name(), err)
		}
		m := rep.Metrics
		if err := errIfNoneAdmitted(m.Served, len(reqs)); err != nil {
			return fmt.Errorf("%s: %w", sys.Name(), err)
		}
		tbl.AddRow(sys.Name(), report.FmtUS(rep.P50), report.FmtUS(rep.P95),
			report.FmtUS(rep.P99), fmt.Sprintf("%.1f%%", rep.Utilization*100),
			fmt.Sprintf("%d", m.Shed()), fmt.Sprintf("%d", m.Timeouts))
		if sys == baselines.Baseline(rf) {
			rfMetrics = srv.Metrics()
		}
	}
	if err := tbl.Write(w); err != nil {
		return err
	}

	if rfMetrics != nil {
		fmt.Fprintf(w, "\nRecFlex serving detail: %s\n", rfMetrics)
		fmt.Fprintf(w, "\nlatency histogram (served requests):\n%s", rfMetrics.Latency.Render(40))
		fmt.Fprintf(w, "\nper-worker utilization over a %.2fms makespan:\n", rfMetrics.Makespan*1e3)
		for g, wk := range rfMetrics.Workers {
			fmt.Fprintf(w, "  gpu%-2d %6d reqs  busy %8s  util %5.1f%%\n",
				g, wk.Served, report.FmtUS(wk.Busy), wk.Utilization*100)
		}
		maxDepth, sum := 0, 0
		for _, s := range rfMetrics.QueueDepth {
			if s.Depth > maxDepth {
				maxDepth = s.Depth
			}
			sum += s.Depth
		}
		if n := len(rfMetrics.QueueDepth); n > 0 {
			fmt.Fprintf(w, "\nadmission queue: peak depth %d, mean depth %.1f over %d samples\n",
				maxDepth, float64(sum)/float64(n), n)
		}
	}
	return nil
}

// errIfNoneAdmitted turns an all-shed replay into a hard failure: a serving
// run whose every request was dropped before dispatch reports nothing but
// zero-value metrics, which reads like success in a pipeline. Surface it.
func errIfNoneAdmitted(served, total int) error {
	if served > 0 {
		return nil
	}
	return fmt.Errorf("zero of %d requests were admitted and served — every request was shed before dispatch; relax -queue, -deadline, -degrade or the tenant quotas", total)
}

// modelDevice resolves the -model/-device/-scale flags.
func modelDevice(model, device string, scale int) (*datasynth.ModelConfig, *gpusim.Device, error) {
	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(), "mlperf": datasynth.MLPerfLike(),
	}
	cfg, ok := configs[model]
	if !ok {
		return nil, nil, fmt.Errorf("unknown model %q", model)
	}
	dev, err := classDevice(device)
	if err != nil {
		return nil, nil, fmt.Errorf("unknown device %q", device)
	}
	return datasynth.Scaled(cfg, scale), dev, nil
}

// tuneModel tunes a fresh RecFlex instance on two historical batches, the
// compile-time step shared by the single-model and fleet paths.
func tuneModel(cfg *datasynth.ModelConfig, dev *gpusim.Device, features []fusion.FeatureInfo) (*core.RecFlex, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			return nil, err
		}
		historical = append(historical, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		return nil, err
	}
	return rf, nil
}

// prebuildBatches generates the canonical batch for every quantized size the
// trace — or its split-at-cap fallback — can ask a system to measure. Every
// system shares this table, which is what makes the head-to-head latency
// columns comparable.
func prebuildBatches(cfg *datasynth.ModelConfig, reqs []trace.Request) (map[int]*embedding.Batch, error) {
	sizes := make(map[int]bool)
	for _, r := range reqs {
		sizes[quantize(r.Size)] = true
		if r.Size > splitCap {
			// Split fallback dispatches capped chunks plus a remainder.
			sizes[quantize(splitCap)] = true
			if rem := r.Size % splitCap; rem > 0 {
				sizes[quantize(rem)] = true
			}
		}
	}
	batches := make(map[int]*embedding.Batch, len(sizes))
	for size := range sizes {
		b, err := datasynth.BatchForSize(cfg, size)
		if err != nil {
			return nil, err
		}
		batches[size] = b
	}
	return batches, nil
}

// serviceFor adapts one system's Measure to the serving engine over the
// shared per-size batch table, memoized and safe for the engine's worker
// pool.
func serviceFor(sys baselines.Baseline, dev *gpusim.Device, features []fusion.FeatureInfo, batches map[int]*embedding.Batch) trace.ServiceFunc {
	return trace.MemoService(func(size int) (float64, error) {
		b, ok := batches[quantize(size)]
		if !ok {
			return 0, fmt.Errorf("no pre-generated batch for size %d (quantized %d)", size, quantize(size))
		}
		return sys.Measure(dev, features, b)
	})
}

// runDrift replays a drifting trace through the continuous serving loop:
// pooling factors scale by factor a fraction frac into the trace, the
// supervisor detects the shift online, re-tunes in the background on one of
// the simulated-GPU worker slots and hot-swaps the fresh schedule set —
// admission never pauses. The same trace replayed with the schedules frozen
// gives the stale baseline the post-swap latency split is measured against.
func runDrift(w io.Writer, rf *core.RecFlex, cfg *datasynth.ModelConfig, reqs []trace.Request, srvCfg trace.ServerConfig, factor, frac float64, canary int, margin float64) error {
	if frac < 0 || frac >= 1 {
		return fmt.Errorf("drift-at %g outside [0,1)", frac)
	}
	// trace.Generate emits requests in arrival order, so the drift step lands
	// at the chosen fraction of the stream.
	at := reqs[int(frac*float64(len(reqs)))].Arrival
	sched := datasynth.StepDrift(at, factor)
	src := func(t float64, size int) (*embedding.Batch, error) {
		return sched.BatchForSize(cfg, t, size)
	}
	opts := core.ContinuousOptions{
		Supervisor: trace.SupervisorConfig{
			Server: srvCfg, Window: 32, CheckEvery: 16,
			CanaryWindow: canary, RollbackMargin: margin,
		},
		Quantum: sizeQuantum,
		PhaseOf: sched.PhaseStart,
	}
	fmt.Fprintf(w, "drift: pooling factors x%g from t=%s\n", factor, report.FmtUS(at))
	if canary > 0 {
		fmt.Fprintf(w, "guarded promotion: canary window %d completions, rollback margin %.0f%%\n", canary, margin*100)
	}
	fmt.Fprintln(w)

	live := rf.Clone()
	rep, err := live.ServeContinuous(reqs, src, opts)
	if err != nil {
		return err
	}
	stale, err := rf.ServeFrozen(reqs, src, opts)
	if err != nil {
		return err
	}

	m := rep.Metrics
	if err := errIfNoneAdmitted(m.Served, len(reqs)); err != nil {
		return err
	}
	if len(m.Swaps) == 0 {
		fmt.Fprintln(w, "no drift detected; serving stayed on generation 0")
		return nil
	}
	for i, s := range m.Swaps {
		if s.Rollback {
			// The verdict lives on the promotion this event reverted — the
			// immediately preceding swap (no tune can launch mid-canary).
			promo := m.Swaps[i-1]
			fmt.Fprintf(w, "generation %d: canary measured %s vs baseline %s -> ROLLED BACK to generation %d schedules at t=%s\n",
				s.Generation, report.FmtUS(promo.CanaryMean), report.FmtUS(promo.BaselineMean),
				s.Reinstated, report.FmtUS(s.Swapped))
			continue
		}
		fmt.Fprintf(w, "generation %d: drift detected t=%s -> background tune on gpu%d (%s busy) -> hot-swap t=%s\n",
			s.Generation, report.FmtUS(s.Detected), s.Worker, report.FmtUS(s.TuneDuration), report.FmtUS(s.Swapped))
	}
	if m.Rollbacks > 0 {
		fmt.Fprintf(w, "canary rollbacks: %d of %d promotions reverted\n", m.Rollbacks, len(m.Swaps)-m.Rollbacks)
	}
	freshMean, staleMean, n := core.PostSwapSplit(rep, stale)
	if n == 0 {
		fmt.Fprintln(w, "swap landed after the last request; no post-swap latency to split")
		return nil
	}
	fmt.Fprintf(w, "\npost-swap latency over %d requests: stale %s vs swapped %s -> %s recovery\n",
		n, report.FmtUS(staleMean), report.FmtUS(freshMean), report.FmtRatio(staleMean/freshMean))
	fmt.Fprintf(w, "continuous p50 %s p99 %s | frozen p50 %s p99 %s\n",
		report.FmtUS(rep.P50), report.FmtUS(rep.P99), report.FmtUS(stale.P50), report.FmtUS(stale.P99))
	fmt.Fprintf(w, "serving detail: %s\n", m)
	return nil
}

// parseTenants decodes the -tenants flag: comma-separated
// name:priority[:quota[:deadline_ms]] entries. An empty flag yields one
// unlimited tenant per model so fleet mode works out of the box.
func parseTenants(s string, models int) ([]fleet.TenantSpec, error) {
	if s == "" {
		out := make([]fleet.TenantSpec, models)
		for i := range out {
			out[i] = fleet.TenantSpec{Name: fmt.Sprintf("tenant%d", i)}
		}
		return out, nil
	}
	var out []fleet.TenantSpec
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 4 || parts[0] == "" {
			return nil, fmt.Errorf("bad tenant %q (want name:priority[:quota[:deadline_ms]])", entry)
		}
		t := fleet.TenantSpec{Name: parts[0]}
		var err error
		if t.Priority, err = strconv.Atoi(parts[1]); err != nil {
			return nil, fmt.Errorf("tenant %s: bad priority %q", t.Name, parts[1])
		}
		if len(parts) > 2 {
			if t.Quota, err = strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("tenant %s: bad quota %q", t.Name, parts[2])
			}
		}
		if len(parts) > 3 {
			ms, err := strconv.ParseFloat(parts[3], 64)
			if err != nil {
				return nil, fmt.Errorf("tenant %s: bad deadline %q", t.Name, parts[3])
			}
			t.Deadline = ms * 1e-3
		}
		if err := t.Validate(); err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// parseWeights decodes the -weights flag: comma-separated priority:weight
// pairs for the weighted-fair policy. An empty flag yields nil (every class
// weighs 1).
func parseWeights(s string) (map[int]float64, error) {
	if s == "" {
		return nil, nil
	}
	out := make(map[int]float64)
	for _, entry := range strings.Split(s, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bad weight %q (want priority:weight)", entry)
		}
		prio, err := strconv.Atoi(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bad weight priority %q", parts[0])
		}
		w, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("bad weight value %q", parts[1])
		}
		if _, dup := out[prio]; dup {
			return nil, fmt.Errorf("duplicate weight for priority %d", prio)
		}
		out[prio] = w
	}
	return out, nil
}

// fleetSetup is everything a shared-pool serving mode needs: the tuned
// models, tenants, per-model request streams and the pool configuration —
// built identically for the batch replay (runFleet), the live gateway
// (runGateway) and the offline session verifier (runReplaySession). Building
// it from the same flags is what lets a recorded gateway session replay
// bit-identically in a separate process.
type fleetSetup struct {
	dev      *gpusim.Device
	models   []core.FleetModel
	tenants  []fleet.TenantSpec
	streams  []fleet.Stream
	cfg      fleet.Config
	strategy fleet.Strategy
	// classes and workerClass mirror cfg.ClassNames/cfg.WorkerClasses for the
	// report (empty for a homogeneous pool).
	classes     []string
	workerClass []int
}

// buildFleetSetup resolves the fleet flags: tenants, placement, admission
// policy, one independently tuned frozen model per -models entry (each with a
// deterministic per-model trace seed) and the shared pool configuration.
func buildFleetSetup(o *options) (*fleetSetup, error) {
	names := strings.Split(o.models, ",")
	tenants, err := parseTenants(o.tenants, len(names))
	if err != nil {
		return nil, err
	}
	strategy, err := fleet.ParseStrategy(o.placement)
	if err != nil {
		return nil, err
	}
	weights, err := parseWeights(o.weights)
	if err != nil {
		return nil, err
	}
	admission, err := fleet.ParsePolicy(o.policy, tenants, o.shedFraction, weights)
	if err != nil {
		return nil, err
	}
	// The fleet default serves admitted requests to completion; -degrade shed
	// switches to dispatch-time deadline shedding, -degrade split-tail arms
	// the pool's split-at-cap fallback for long-tail requests.
	policy := trace.DegradeServe
	if o.degrade != "" {
		if policy, err = trace.ParseDegradePolicy(o.degrade); err != nil {
			return nil, err
		}
	}
	splitBound := 0
	if policy == trace.DegradeSplitTail {
		splitBound = splitCap
	}

	s := &fleetSetup{tenants: tenants, strategy: strategy}
	var reserves []int
	if o.reserve != "" {
		if reserves, err = parseReserve(o.reserve, len(names)); err != nil {
			return nil, err
		}
	}
	// A heterogeneous pool tunes every model on the first listed class and
	// speed-probes the tuned schedules on each other class's device; the
	// probed service ratio becomes the model's per-class ClassScale. Built
	// from flags alone, so a recorded session replays bit-identically.
	baseDev := o.device
	if o.workerClasses != "" {
		if s.workerClass, s.classes, err = parseWorkerClasses(o.workerClasses); err != nil {
			return nil, err
		}
		baseDev = s.classes[0]
		if o.autoClass != "" && indexOf(s.classes, o.autoClass) < 0 {
			s.classes = append(s.classes, o.autoClass)
		}
	}
	var heats []emcache.ModelProfile
	for i, name := range names {
		name = strings.TrimSpace(name)
		cfg, d, err := modelDevice(name, baseDev, o.scale)
		if err != nil {
			return nil, err
		}
		heats = append(heats, emcache.Steady(experiments.CacheHeat(cfg)))
		s.dev = d
		features := experiments.Features(cfg)
		rf, err := tuneModel(cfg, d, features)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", name, err)
		}
		var classScale []float64
		if len(s.classes) > 1 {
			if classScale, err = probeClassScales(cfg, features, rf, s.classes); err != nil {
				return nil, fmt.Errorf("model %s: %w", name, err)
			}
		}
		reqs, err := trace.Generate(o.requests, trace.GeneratorConfig{
			QPS: o.qps, MaxBatch: splitCap, TailProb: o.tailProb,
			TailSize: datasynth.LongTailRequest,
			Seed:     cfg.Seed ^ 0x5E17E ^ int64(i+1)<<20,
		})
		if err != nil {
			return nil, err
		}
		label := name
		if len(names) > 1 {
			label = fmt.Sprintf("%s/%d", name, i)
		}
		c := cfg
		fm := core.FleetModel{
			Name: label,
			Rec:  rf,
			Source: func(_ float64, size int) (*embedding.Batch, error) {
				return datasynth.BatchForSize(c, size)
			},
			Opts:       core.ContinuousOptions{Quantum: sizeQuantum},
			Frozen:     true,
			ClassScale: classScale,
		}
		if reserves != nil {
			fm.Reserve = reserves[i]
		}
		s.models = append(s.models, fm)
		s.streams = append(s.streams, fleet.Stream{Model: i, Tenant: i % len(tenants), Reqs: reqs})
	}
	s.cfg = fleet.Config{
		Queue: trace.QueuePolicy{
			Workers:    o.gpus,
			QueueDepth: o.queue,
			Deadline:   o.deadline * 1e-3,
			Policy:     policy,
			SplitCap:   splitBound,
		},
		Placement:     strategy,
		Admission:     admission,
		ShedFraction:  o.shedFraction,
		Preempt:       o.preempt,
		WorkerClasses: s.workerClass,
		ClassNames:    s.classes,
	}
	if o.rebalance > 0 {
		s.cfg.RebalanceEvery = o.rebalance
		s.cfg.Rebalance = fleet.NewRebalanceByLoad(fleet.RebalanceByLoadConfig{})
	}
	if o.autoMax > 0 {
		as := &fleet.AutoscaleConfig{Every: o.autoEvery, Max: o.autoMax, ScaleOutLag: o.autoLag}
		if o.autoClass != "" {
			as.Class = indexOf(s.classes, o.autoClass)
		}
		s.cfg.Autoscale = as
	}
	if o.cacheBudget > 0 {
		// The tier's heat profiles come from the same model configs the batch
		// generator uses, so the analytic hit accounting matches the traffic.
		// Building the tier from flags alone (never from runtime state) is what
		// lets -replay-session reconstruct the identical tier in a fresh
		// process.
		cachePolicy, err := emcache.ParsePolicy(o.cachePolicy)
		if err != nil {
			return nil, err
		}
		tier, err := emcache.New(emcache.Config{
			BudgetBytes: int64(o.cacheBudget * (1 << 20)),
			Policy:      cachePolicy,
			RetierEvery: o.cacheRetier,
			Models:      heats,
			Tenants:     len(tenants),
		})
		if err != nil {
			return nil, err
		}
		s.cfg.Cache = tier
	}
	return s, nil
}

// indexOf returns the index of name in names, -1 when absent.
func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// classProbeSize is the batch size the per-class speed probe measures — a
// mid-size serving batch in the same region as the tuner's historical ones.
const classProbeSize = 256

// probeClassScales measures one model's service-time multiplier for every
// worker class. The base class (classes[0], the one base tuned on) is 1 by
// definition; every other class tunes its own instance on that class's device
// and the probe-batch service ratio against the base becomes the scale — a
// schedule deployed on an A100-class worker runs at the A100-tuned speed. The
// ratios are pure functions of the model config and class list, so a session
// replay rebuilds identical scales.
func probeClassScales(cfg *datasynth.ModelConfig, features []fusion.FeatureInfo, base *core.RecFlex, classes []string) ([]float64, error) {
	src := func(_ float64, size int) (*embedding.Batch, error) { return datasynth.BatchForSize(cfg, size) }
	ref, err := base.TimedService(src, sizeQuantum, nil)(0, classProbeSize)
	if err != nil {
		return nil, err
	}
	if !(ref > 0) {
		return nil, fmt.Errorf("class probe: base service time %g is not positive", ref)
	}
	scales := make([]float64, len(classes))
	scales[0] = 1
	for ci := 1; ci < len(classes); ci++ {
		dev, err := classDevice(classes[ci])
		if err != nil {
			return nil, err
		}
		rf, err := tuneModel(cfg, dev, features)
		if err != nil {
			return nil, fmt.Errorf("class %s tune: %w", classes[ci], err)
		}
		sv, err := rf.TimedService(src, sizeQuantum, nil)(0, classProbeSize)
		if err != nil {
			return nil, err
		}
		scales[ci] = sv / ref
	}
	return scales, nil
}

// printElastic renders the elastic-pool accounting — preemptions and applied
// scale decisions — shared by the batch fleet replay and the session verifier.
func printElastic(w io.Writer, m *fleet.Metrics) {
	if m.Preemptions > 0 {
		fmt.Fprintf(w, "preemptions: %d split chunks yielded to higher-priority arrivals\n", m.Preemptions)
	}
	if len(m.ScaleEvents) == 0 {
		return
	}
	outs, ins := 0, 0
	for _, e := range m.ScaleEvents {
		if e.Delta > 0 {
			outs++
		} else {
			ins++
		}
	}
	fmt.Fprintf(w, "autoscale: %d scale-outs, %d drains over %d worker lifetimes\n", outs, ins, len(m.WorkerLives))
	for _, e := range m.ScaleEvents {
		verb := "added"
		if e.Delta < 0 {
			verb = "drained"
		}
		fmt.Fprintf(w, "  t=%-10s %s gpu%d -> %d active\n", report.FmtUS(e.Time), verb, e.Worker, e.Workers)
	}
}

// printCacheTier renders the embedding-cache tier's accounting, shared by the
// batch fleet replay, the gateway shutdown summary and the session verifier.
func printCacheTier(w io.Writer, m *fleet.Metrics) {
	if m == nil || m.Cache == nil {
		return
	}
	fmt.Fprintf(w, "\nembedding-cache tier: %s\n", m.Cache)
	for _, g := range m.Cache.Models {
		fmt.Fprintf(w, "  model %-12s hit %5.1f%%  cold %10.0f rows  penalty %9.3fms  resident %s\n",
			g.Name, 100*g.HitRate, g.Misses, g.Penalty*1e3, fmtMiB(g.OccupiedBytes))
	}
	for _, g := range m.Cache.Tenants {
		fmt.Fprintf(w, "  tenant %-11s hit %5.1f%%  cold %10.0f rows  penalty %9.3fms\n",
			g.Name, 100*g.HitRate, g.Misses, g.Penalty*1e3)
	}
}

// fmtMiB renders a byte count in MiB for the cache report.
func fmtMiB(b int64) string { return fmt.Sprintf("%.2fMiB", float64(b)/(1<<20)) }

// runFleet serves several independently tuned models over one shared
// simulated GPU pool. Each model gets its own Poisson trace (same -requests
// and -qps, a model-distinct seed) and is mapped round-robin onto the tenant
// list; the merged stream replays under the configured admission policy and
// placement strategy with per-model and per-tenant accounting.
func runFleet(o *options, w io.Writer) error {
	if o.drift > 0 {
		return fmt.Errorf("fleet mode serves fixed schedule sets; for drift and hot-swaps on a shared pool use recflex-bench -exp fleet or examples/fleet")
	}
	s, err := buildFleetSetup(o)
	if err != nil {
		return err
	}
	dev, models, tenants := s.dev, s.models, s.tenants
	merged := fleet.Merge(s.streams...)

	devName := dev.Name
	if len(s.classes) > 1 {
		devName = strings.Join(s.classes, "+")
	}
	fmt.Fprintf(w, "fleet serving: %d models x %d requests at %.0f qps each on a shared %dx %s pool (%s placement, %s admission)\n\n",
		len(models), o.requests, o.qps, o.gpus, devName, s.strategy, o.policy)
	res, err := core.ServeFleet(s.cfg, models, tenants, merged)
	if err != nil {
		return err
	}
	m := res.Report.Metrics
	if err := errIfNoneAdmitted(m.Served, len(merged)); err != nil {
		return err
	}

	tbl := &report.Table{
		Title:  "per-model latency on the shared pool",
		Header: []string{"Model", "tenant", "p50", "p95", "p99", "served", "shed", "interference"},
	}
	for i, g := range m.Models {
		interf := "n/a"
		if !math.IsNaN(res.Interference[i]) {
			interf = report.FmtRatio(res.Interference[i])
		}
		tbl.AddRow(g.Name, tenants[i%len(tenants)].Name,
			report.FmtUS(g.P50), report.FmtUS(g.P95), report.FmtUS(g.P99),
			fmt.Sprintf("%d", g.Served), fmt.Sprintf("%d", g.Shed()), interf)
	}
	if err := tbl.Write(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "\nper-tenant accounting:\n")
	for _, g := range m.Tenants {
		fmt.Fprintf(w, "  %s\n", g.String())
	}
	fmt.Fprintf(w, "\npool: %s\n", m)
	printCacheTier(w, m)
	if m.Rebalances > 0 {
		fmt.Fprintf(w, "rebalances applied: %d (from %d load snapshots)\n", m.Rebalances, len(m.LoadHistory))
	}
	printElastic(w, m)
	fmt.Fprintf(w, "per-worker utilization over a %.2fms makespan:\n", m.Makespan*1e3)
	for g, wk := range m.Workers {
		fmt.Fprintf(w, "  gpu%-2d%s %6d reqs  busy %8s  util %5.1f%%\n",
			g, s.workerLabel(g, m), wk.Served, report.FmtUS(wk.Busy), wk.Utilization*100)
	}
	return nil
}

// workerLabel names worker g's device class for the utilization lines, e.g.
// " [A100]"; empty for a homogeneous pool. Autoscaled runs record every
// worker's class in WorkerLives; static heterogeneous pools read the flag's
// per-worker classes.
func (s *fleetSetup) workerLabel(g int, m *fleet.Metrics) string {
	if len(s.classes) == 0 {
		return ""
	}
	c := 0
	switch {
	case g < len(m.WorkerLives):
		c = m.WorkerLives[g].Class
	case g < len(s.workerClass):
		c = s.workerClass[g]
	}
	return fmt.Sprintf(" [%s]", s.classes[c])
}

// runGateway is the real-time front door: it builds the same shared pool the
// batch fleet mode serves, opens a time-warped gateway session over it, and
// accepts live inference requests over HTTP until the wall duration elapses
// or an interrupt arrives. With -session the admitted stream and outcomes are
// recorded, and the log is immediately re-read and replayed offline through
// the pool as a self-check — the same bit-identical verification
// -replay-session runs in a separate process.
func runGateway(o *options, w io.Writer) error {
	if o.models == "" {
		return fmt.Errorf("-listen serves a shared fleet pool; pass -models (e.g. -models A,C)")
	}
	if o.drift > 0 {
		return fmt.Errorf("gateway mode serves fixed schedule sets; -drift is a single-model batch-replay flag")
	}
	s, err := buildFleetSetup(o)
	if err != nil {
		return err
	}
	pool, _, err := core.BuildFleetPool(s.cfg, s.models, s.tenants)
	if err != nil {
		return err
	}

	var sessFile *os.File
	gcfg := gateway.Config{Pool: pool, Warp: o.warp}
	if o.session != "" {
		if sessFile, err = os.Create(o.session); err != nil {
			return err
		}
		gcfg.Session = sessFile
	}
	g, err := gateway.New(gcfg)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.listen)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: g.Handler()}
	go srv.Serve(ln)
	gwDev := s.dev.Name
	if len(s.classes) > 1 {
		gwDev = strings.Join(s.classes, "+")
	}
	fmt.Fprintf(w, "gateway: %d models, %d tenants on a shared %dx %s pool (%s placement, %s admission)\n",
		len(s.models), len(s.tenants), o.gpus, gwDev, s.strategy, o.policy)
	fmt.Fprintf(w, "listening on http://%s (time-warp %gx: 1 wall second = %g simulated seconds)\n",
		ln.Addr(), o.warp, o.warp)
	fmt.Fprintf(w, "endpoints: POST /v1/infer, GET /v1/metrics, GET /healthz\n")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	if o.serveDur > 0 {
		select {
		case <-time.After(time.Duration(o.serveDur * float64(time.Second))):
		case <-sig:
		}
	} else {
		<-sig
	}
	srv.Close()
	ln.Close()

	rep, closeErr := g.Close()
	st := g.Stats()
	fmt.Fprintf(w, "\ngateway session: %d admitted, %d served, %d shed, %d lost (sim clock reached %.3fs)\n",
		st.Admitted, st.Served, st.Shed, st.Lost, st.SimNow)
	if closeErr != nil {
		return closeErr
	}
	if rep != nil {
		fmt.Fprintf(w, "served-sojourn percentiles: p50 %s p95 %s p99 %s (simulated)\n",
			report.FmtUS(st.P50), report.FmtUS(st.P95), report.FmtUS(st.P99))
		fmt.Fprintf(w, "pool: %s\n", rep.Metrics)
		printElastic(w, rep.Metrics)
		printCacheTier(w, rep.Metrics)
	}
	if sessFile == nil {
		return nil
	}
	if err := sessFile.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "session log recorded to %s (verify later with -replay-session %s and the same pool flags)\n",
		o.session, o.session)
	if st.Admitted == 0 {
		return nil
	}
	f, err := os.Open(o.session)
	if err != nil {
		return err
	}
	sess, err := gateway.ReadSession(f)
	f.Close()
	if err != nil {
		return err
	}
	rrep, err := sess.Replay(pool)
	if err != nil {
		return fmt.Errorf("session self-check failed: %w", err)
	}
	// The per-request comparison inside Replay already proves the sojourns
	// (and therefore the cache-inflated service times) reproduce; with a tier
	// armed, also hold the aggregate hit/miss accounting to the same bar.
	if rep != nil && rrep != nil && !reflect.DeepEqual(rep.Metrics.Cache, rrep.Metrics.Cache) {
		return fmt.Errorf("session self-check failed: cache tier counters diverged between live session and replay:\nlive:   %+v\nreplay: %+v",
			rep.Metrics.Cache, rrep.Metrics.Cache)
	}
	fmt.Fprintf(w, "session self-check: %d recorded requests replayed bit-identically\n", len(sess.Requests))
	return nil
}

// runReplaySession rebuilds the pool from the same flags as the recording run
// and replays a recorded gateway session through it offline, verifying every
// outcome, sojourn, worker and generation bit for bit.
func runReplaySession(o *options, w io.Writer) error {
	if o.models == "" {
		return fmt.Errorf("-replay-session rebuilds the recording run's pool; pass the same -models (and pool flags) as the gateway run")
	}
	s, err := buildFleetSetup(o)
	if err != nil {
		return err
	}
	pool, _, err := core.BuildFleetPool(s.cfg, s.models, s.tenants)
	if err != nil {
		return err
	}
	f, err := os.Open(o.replaySession)
	if err != nil {
		return err
	}
	sess, err := gateway.ReadSession(f)
	f.Close()
	if err != nil {
		return err
	}
	rep, err := sess.Replay(pool)
	if err != nil {
		return fmt.Errorf("session %s diverged from the live run: %w", o.replaySession, err)
	}
	m := rep.Metrics
	fmt.Fprintf(w, "replayed %d recorded requests bit-identically: %d served, %d shed over a %.3fs sim makespan\n",
		len(sess.Requests), m.Served, m.Shed(), m.Makespan)
	fmt.Fprintf(w, "pool: %s\n", m)
	printElastic(w, m)
	printCacheTier(w, m)
	return nil
}
