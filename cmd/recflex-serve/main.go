// Command recflex-serve replays an online-serving request trace (Poisson
// arrivals, serving-sized batches, optional unsplit long-tail requests)
// through every embedding system and reports end-to-end latency — the
// served-workload view of the paper's §VI-D discussion, now driven by the
// concurrent serving engine: k simulated GPUs behind a bounded admission
// queue, per-request deadlines with shed/timeout accounting, split-at-cap
// degradation of long-tail requests, and a latency histogram plus
// per-worker utilization for the tuned system.
//
// Fairness: every system is measured on the identical batch for a given
// request size. Batches are pre-generated once per quantized size, seeded
// from (model seed, size) alone, so no system's measurement order can
// perturb another's inputs.
//
// Usage:
//
//	recflex-serve -model A -scale 25 -requests 200 -qps 2000 -tail 0.02 \
//	    -gpus 2 -deadline 1.5 -queue 64
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/trace"
	"repro/internal/tuner"
)

// sizeQuantum is the measurement grid: request sizes round up to this
// multiple so the per-size batch table and service memo stay small.
const sizeQuantum = 32

// splitCap is the serving split threshold (512 in the paper): requests
// above it are unsplit long-tail batches eligible for the split-at-cap
// degradation fallback.
const splitCap = 512

// quantize rounds a request size up to the measurement grid.
func quantize(size int) int {
	return (size + sizeQuantum - 1) / sizeQuantum * sizeQuantum
}

// prebuildBatches generates the canonical batch for every quantized size the
// trace — or its split-at-cap fallback — can ask a system to measure. Every
// system shares this table, which is what makes the head-to-head latency
// columns comparable.
func prebuildBatches(cfg *datasynth.ModelConfig, reqs []trace.Request) (map[int]*embedding.Batch, error) {
	sizes := make(map[int]bool)
	for _, r := range reqs {
		sizes[quantize(r.Size)] = true
		if r.Size > splitCap {
			// Split fallback dispatches capped chunks plus a remainder.
			sizes[quantize(splitCap)] = true
			if rem := r.Size % splitCap; rem > 0 {
				sizes[quantize(rem)] = true
			}
		}
	}
	batches := make(map[int]*embedding.Batch, len(sizes))
	for size := range sizes {
		b, err := datasynth.BatchForSize(cfg, size)
		if err != nil {
			return nil, err
		}
		batches[size] = b
	}
	return batches, nil
}

// serviceFor adapts one system's Measure to the serving engine over the
// shared per-size batch table, memoized and safe for the engine's worker
// pool.
func serviceFor(sys baselines.Baseline, dev *gpusim.Device, features []fusion.FeatureInfo, batches map[int]*embedding.Batch) trace.ServiceFunc {
	return trace.MemoService(func(size int) (float64, error) {
		b, ok := batches[quantize(size)]
		if !ok {
			return 0, fmt.Errorf("no pre-generated batch for size %d (quantized %d)", size, quantize(size))
		}
		return sys.Measure(dev, features, b)
	})
}

// runDrift replays a drifting trace through the continuous serving loop:
// pooling factors scale by factor a fraction frac into the trace, the
// supervisor detects the shift online, re-tunes in the background on one of
// the simulated-GPU worker slots and hot-swaps the fresh schedule set —
// admission never pauses. The same trace replayed with the schedules frozen
// gives the stale baseline the post-swap latency split is measured against.
func runDrift(rf *core.RecFlex, cfg *datasynth.ModelConfig, reqs []trace.Request, srvCfg trace.ServerConfig, factor, frac float64, canary int, margin float64) {
	if frac < 0 || frac >= 1 {
		log.Fatalf("drift-at %g outside [0,1)", frac)
	}
	// trace.Generate emits requests in arrival order, so the drift step lands
	// at the chosen fraction of the stream.
	at := reqs[int(frac*float64(len(reqs)))].Arrival
	sched := datasynth.StepDrift(at, factor)
	src := func(t float64, size int) (*embedding.Batch, error) {
		return sched.BatchForSize(cfg, t, size)
	}
	opts := core.ContinuousOptions{
		Supervisor: trace.SupervisorConfig{
			Server: srvCfg, Window: 32, CheckEvery: 16,
			CanaryWindow: canary, RollbackMargin: margin,
		},
		Quantum: sizeQuantum,
		PhaseOf: sched.PhaseStart,
	}
	fmt.Printf("drift: pooling factors x%g from t=%s\n", factor, report.FmtUS(at))
	if canary > 0 {
		fmt.Printf("guarded promotion: canary window %d completions, rollback margin %.0f%%\n", canary, margin*100)
	}
	fmt.Println()

	live := rf.Clone()
	rep, err := live.ServeContinuous(reqs, src, opts)
	if err != nil {
		log.Fatal(err)
	}
	stale, err := rf.ServeFrozen(reqs, src, opts)
	if err != nil {
		log.Fatal(err)
	}

	m := rep.Metrics
	if len(m.Swaps) == 0 {
		fmt.Println("no drift detected; serving stayed on generation 0")
		return
	}
	for i, s := range m.Swaps {
		if s.Rollback {
			// The verdict lives on the promotion this event reverted — the
			// immediately preceding swap (no tune can launch mid-canary).
			promo := m.Swaps[i-1]
			fmt.Printf("generation %d: canary measured %s vs baseline %s -> ROLLED BACK to generation %d schedules at t=%s\n",
				s.Generation, report.FmtUS(promo.CanaryMean), report.FmtUS(promo.BaselineMean),
				s.Reinstated, report.FmtUS(s.Swapped))
			continue
		}
		fmt.Printf("generation %d: drift detected t=%s -> background tune on gpu%d (%s busy) -> hot-swap t=%s\n",
			s.Generation, report.FmtUS(s.Detected), s.Worker, report.FmtUS(s.TuneDuration), report.FmtUS(s.Swapped))
	}
	if m.Rollbacks > 0 {
		fmt.Printf("canary rollbacks: %d of %d promotions reverted\n", m.Rollbacks, len(m.Swaps)-m.Rollbacks)
	}
	freshMean, staleMean, n := core.PostSwapSplit(rep, stale)
	if n == 0 {
		fmt.Println("swap landed after the last request; no post-swap latency to split")
		return
	}
	fmt.Printf("\npost-swap latency over %d requests: stale %s vs swapped %s -> %s recovery\n",
		n, report.FmtUS(staleMean), report.FmtUS(freshMean), report.FmtRatio(staleMean/freshMean))
	fmt.Printf("continuous p50 %s p99 %s | frozen p50 %s p99 %s\n",
		report.FmtUS(rep.P50), report.FmtUS(rep.P99), report.FmtUS(stale.P50), report.FmtUS(stale.P99))
	fmt.Printf("serving detail: %s\n", m)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-serve: ")
	var (
		model    = flag.String("model", "A", "model: A,B,C,D,E,mlperf")
		device   = flag.String("device", "V100", "device: V100 or A100")
		scale    = flag.Int("scale", 25, "feature-count divisor")
		requests = flag.Int("requests", 200, "requests in the trace")
		qps      = flag.Float64("qps", 2000, "mean arrival rate")
		tailProb = flag.Float64("tail", 0.02, "probability of an unsplit 2560-sample request")
		gpus     = flag.Int("gpus", 1, "simulated GPU workers per system")
		queue    = flag.Int("queue", 0, "admission queue bound (0 = unbounded)")
		deadline = flag.Float64("deadline", 0, "per-request deadline in milliseconds (0 = none)")
		drift    = flag.Float64("drift", 0, "mid-trace pooling-factor scale (0 = steady workload); switches to the continuous serving loop with online re-tuning")
		driftAt  = flag.Float64("drift-at", 0.33, "fraction of the trace after which the drift lands")
		canary   = flag.Int("canary", 0, "guard each hot-swap with a canary window of this many completions (0 = unguarded)")
		margin   = flag.Float64("rollback-margin", 0.1, "fractional degradation the canary tolerates before rolling a swap back")
	)
	flag.Parse()

	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(), "mlperf": datasynth.MLPerfLike(),
	}
	cfg, ok := configs[*model]
	if !ok {
		log.Fatalf("unknown model %q", *model)
	}
	cfg = datasynth.Scaled(cfg, *scale)
	var dev *gpusim.Device
	switch *device {
	case "V100":
		dev = gpusim.V100()
	case "A100":
		dev = gpusim.A100()
	default:
		log.Fatalf("unknown device %q", *device)
	}
	features := experiments.Features(cfg)

	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		historical = append(historical, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		log.Fatal(err)
	}

	reqs, err := trace.Generate(*requests, trace.GeneratorConfig{
		QPS: *qps, MaxBatch: splitCap, TailProb: *tailProb,
		TailSize: datasynth.LongTailRequest, Seed: cfg.Seed ^ 0x5E17E,
	})
	if err != nil {
		log.Fatal(err)
	}
	srvCfg := trace.ServerConfig{
		Workers:    *gpus,
		QueueDepth: *queue,
		Deadline:   *deadline * 1e-3,
		SplitCap:   splitCap,
		Policy:     trace.DegradeSplitTail,
	}
	if *drift > 0 {
		fmt.Printf("continuous serving: %d requests at %.0f qps on %dx %s/%s (%d features, %.1f%% long tail)\n",
			len(reqs), *qps, *gpus, dev.Name, cfg.Name, len(features), *tailProb*100)
		runDrift(rf, cfg, reqs, srvCfg, *drift, *driftAt, *canary, *margin)
		return
	}
	batches, err := prebuildBatches(cfg, reqs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("serving %d requests at %.0f qps on %dx %s/%s (%d features, %.1f%% long tail, %d shared batches)\n\n",
		len(reqs), *qps, *gpus, dev.Name, cfg.Name, len(features), *tailProb*100, len(batches))
	systems := append(baselines.All(), rf)
	tbl := &report.Table{
		Title:  "end-to-end request latency",
		Header: []string{"System", "p50", "p95", "p99", "GPU util", "shed", "timeout"},
	}
	var rfMetrics *trace.Metrics
	for _, sys := range systems {
		if sys.Supports(features) != nil {
			continue
		}
		srv, err := trace.NewServer(srvCfg, serviceFor(sys, dev, features, batches))
		if err != nil {
			log.Fatal(err)
		}
		rep, err := srv.Serve(reqs)
		if err != nil {
			log.Fatalf("%s: %v", sys.Name(), err)
		}
		m := rep.Metrics
		tbl.AddRow(sys.Name(), report.FmtUS(rep.P50), report.FmtUS(rep.P95),
			report.FmtUS(rep.P99), fmt.Sprintf("%.1f%%", rep.Utilization*100),
			fmt.Sprintf("%d", m.Shed()), fmt.Sprintf("%d", m.Timeouts))
		if sys == baselines.Baseline(rf) {
			rfMetrics = srv.Metrics()
		}
	}
	if err := tbl.Write(log.Writer()); err != nil {
		log.Fatal(err)
	}

	if rfMetrics != nil {
		fmt.Printf("\nRecFlex serving detail: %s\n", rfMetrics)
		fmt.Printf("\nlatency histogram (served requests):\n%s", rfMetrics.Latency.Render(40))
		fmt.Printf("\nper-worker utilization over a %.2fms makespan:\n", rfMetrics.Makespan*1e3)
		for g, w := range rfMetrics.Workers {
			fmt.Printf("  gpu%-2d %6d reqs  busy %8s  util %5.1f%%\n",
				g, w.Served, report.FmtUS(w.Busy), w.Utilization*100)
		}
		maxDepth, sum := 0, 0
		for _, s := range rfMetrics.QueueDepth {
			if s.Depth > maxDepth {
				maxDepth = s.Depth
			}
			sum += s.Depth
		}
		if n := len(rfMetrics.QueueDepth); n > 0 {
			fmt.Printf("\nadmission queue: peak depth %d, mean depth %.1f over %d samples\n",
				maxDepth, float64(sum)/float64(n), n)
		}
	}
}
