package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"regexp"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fleet"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/trace"
)

// recordingSystem captures exactly which batch it was asked to measure for
// each size, standing in for a real baseline.
type recordingSystem struct {
	name string
	seen map[int]*embedding.Batch
}

func (r *recordingSystem) Name() string                        { return r.name }
func (r *recordingSystem) Supports([]fusion.FeatureInfo) error { return nil }
func (r *recordingSystem) Measure(_ *gpusim.Device, _ []fusion.FeatureInfo, b *embedding.Batch) (float64, error) {
	size := len(b.Features[0].Offsets) - 1
	r.seen[size] = b
	return float64(size) * 1e-6, nil
}

// Regression test for the shared-rng fairness bug: two systems' service
// functions must observe the *same* pre-generated batch for the same
// request size, regardless of measurement order.
func TestSystemsObserveIdenticalBatches(t *testing.T) {
	cfg := datasynth.Scaled(datasynth.ModelA(), 50)
	reqs, err := trace.Generate(60, trace.GeneratorConfig{
		QPS: 1000, MaxBatch: splitCap, TailProb: 0.1,
		TailSize: datasynth.LongTailRequest, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	batches, err := prebuildBatches(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if _, ok := batches[quantize(r.Size)]; !ok {
			t.Fatalf("no batch for request size %d", r.Size)
		}
	}

	dev := gpusim.V100()
	a := &recordingSystem{name: "A", seen: make(map[int]*embedding.Batch)}
	b := &recordingSystem{name: "B", seen: make(map[int]*embedding.Batch)}
	for _, sys := range []*recordingSystem{a, b} {
		if _, err := trace.Serve(reqs, serviceFor(sys, dev, nil, batches)); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.seen) == 0 || len(a.seen) != len(b.seen) {
		t.Fatalf("systems saw %d and %d sizes", len(a.seen), len(b.seen))
	}
	for size, ba := range a.seen {
		bb, ok := b.seen[size]
		if !ok {
			t.Fatalf("system B never measured size %d", size)
		}
		if ba != bb {
			t.Errorf("size %d: systems measured different batch instances", size)
		}
	}

	// The table itself is deterministic: rebuilding it yields batches with
	// identical contents (not merely identical pointers within one run).
	again, err := prebuildBatches(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(batches) {
		t.Fatalf("rebuild produced %d sizes, want %d", len(again), len(batches))
	}
	for size, b1 := range batches {
		b2 := again[size]
		if b2 == nil || !reflect.DeepEqual(b1.Features[0], b2.Features[0]) {
			t.Errorf("size %d: rebuilt batch differs", size)
		}
	}
}

// The split-at-cap fallback can only dispatch sizes that exist in the
// shared batch table.
func TestPrebuildCoversSplitChunks(t *testing.T) {
	cfg := datasynth.Scaled(datasynth.ModelA(), 50)
	reqs := []trace.Request{{Arrival: 0, Size: datasynth.LongTailRequest}}
	batches, err := prebuildBatches(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{quantize(datasynth.LongTailRequest), quantize(splitCap)} {
		if _, ok := batches[size]; !ok {
			t.Errorf("batch table missing size %d", size)
		}
	}
}

// The zero-admitted satellite: a configuration under which every request is
// shed before dispatch must fail the command with a clear error instead of
// printing a table of zero-value metrics. DegradeShed plus a deadline far
// below any service time sheds the entire trace.
func TestRunZeroAdmittedFails(t *testing.T) {
	err := run([]string{
		"-scale", "400", "-requests", "12", "-qps", "50000",
		"-degrade", "shed", "-deadline", "0.0001",
	}, io.Discard)
	if err == nil {
		t.Fatal("run succeeded although no request could be admitted and served")
	}
	if !strings.Contains(err.Error(), "zero of 12 requests") {
		t.Errorf("error does not explain the all-shed trace: %v", err)
	}
}

// Fleet mode end to end through the run() seam: two independently tuned
// models, two tenants, priority-EDF over a shared two-GPU pool. The report
// must split per model and per tenant, and the whole replay must be
// deterministic — two invocations print identical bytes.
func TestRunFleetMode(t *testing.T) {
	args := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0:6",
		"-policy", "priority-edf", "-placement", "spread",
		"-scale", "400", "-requests", "24", "-qps", "4000",
		"-gpus", "2", "-queue", "32",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"fleet serving", "A/0", "A/1", "hi", "lo", "per-tenant accounting", "interference", "spread placement"} {
		if !strings.Contains(s, want) {
			t.Errorf("fleet output missing %q in:\n%s", want, s)
		}
	}
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != s {
		t.Error("fleet mode is not deterministic: two runs printed different reports")
	}
}

// Fleet mode with the full PR-5 feature set through the run() seam:
// weighted-fair admission, split-at-cap degradation and the load-history
// rebalancer all leave their marks on the report, deterministically. The
// deadline (9us) sits between the small-request sojourn (~6us) and the
// long-tail service time (~11us at scale 400), so tail requests split
// instead of being served whole or shed.
func TestRunFleetWeightedFairSplit(t *testing.T) {
	args := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-policy", "weighted-fair", "-weights", "1:3,0:1",
		"-scale", "400", "-requests", "30", "-qps", "2000",
		"-gpus", "2", "-queue", "32",
		"-degrade", "split-tail", "-tail", "0.25", "-deadline", "0.009",
		"-rebalance", "0.001",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"weighted-fair admission", "split=", "rebalances applied: 1", "load snapshots"} {
		if !strings.Contains(s, want) {
			t.Errorf("fleet output missing %q in:\n%s", want, s)
		}
	}
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != s {
		t.Error("weighted-fair fleet mode is not deterministic: two runs printed different reports")
	}
}

func TestParseWeights(t *testing.T) {
	got, err := parseWeights("1:3, 0:1.5")
	if err != nil {
		t.Fatal(err)
	}
	if want := map[int]float64{1: 3, 0: 1.5}; !reflect.DeepEqual(got, want) {
		t.Errorf("parseWeights = %v, want %v", got, want)
	}
	if got, err := parseWeights(""); err != nil || got != nil {
		t.Errorf("parseWeights(\"\") = %v, %v; want nil, nil", got, err)
	}
	for _, bad := range []string{"x:1", "1:x", "1", "1:2:3", "1:1,1:2"} {
		if _, err := parseWeights(bad); err == nil {
			t.Errorf("parseWeights(%q) succeeded, want error", bad)
		}
	}
}

// Flag validation fails fast, before any tuning happens.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "Z"},
		{"-device", "H100"},
		{"-degrade", "gracefully"},
		{"-models", "A", "-drift", "2"},
		{"-models", "A", "-placement", "ring"},
		{"-models", "A", "-policy", "lifo"},
		{"-models", "A", "-tenants", "noprio"},
		{"-models", "A", "-policy", "weighted-fair", "-weights", "1:x"},
		{"-models", "A", "-policy", "weighted-fair", "-weights", "0:1,0:2"},
		{"-models", "A", "-policy", "weighted-fair", "-weights", "9:2"},
		{"-models", "A", "-tenants", "hi:1,lo:0", "-policy", "weighted-fair", "-weights", "1:0,0:0"},
		{"-models", "Z,A"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// The cache-tier flag sweep: every bad spelling fails at flag-parse time with
// a message naming the offending flag, before any model is tuned.
func TestRunRejectsBadCacheFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-models", "A", "-cache-budget", "0"}, "-cache-budget"},
		{[]string{"-models", "A", "-cache-budget", "-4"}, "-cache-budget"},
		{[]string{"-models", "A", "-cache-budget", "+Inf"}, "-cache-budget"},
		{[]string{"-models", "A", "-cache-budget", "4", "-cache-policy", "arc"}, "-cache-policy"},
		{[]string{"-models", "A", "-cache-budget", "4", "-cache-retier", "-1"}, "-cache-retier"},
		// Cache flags outside fleet mode are dead configuration: reject.
		{[]string{"-cache-budget", "4"}, "fleet mode"},
		{[]string{"-cache-policy", "lru"}, "-cache-policy"},
		{[]string{"-model", "A", "-cache-retier", "0.5"}, "fleet mode"},
		// Policy/retier without a budget shape a tier that never exists.
		{[]string{"-models", "A", "-cache-policy", "lru"}, "-cache-budget"},
		{[]string{"-models", "A", "-cache-retier", "0.5"}, "-cache-budget"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard)
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) error %q does not mention %q", c.args, err, c.want)
		}
	}
}

// The elastic-pool flag sweep: every inconsistent combination fails at
// flag-parse time with a message naming the offending flag, before any model
// is tuned.
func TestRunRejectsBadElasticFlags(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		// Pool-shaping flags outside fleet mode are dead configuration: reject.
		{[]string{"-preempt"}, "-models"},
		{[]string{"-reserve", "1"}, "-models"},
		{[]string{"-worker-classes", "V100"}, "-models"},
		{[]string{"-autoscale-max", "4"}, "-models"},
		{[]string{"-tenants", "hi:1"}, "-models"},
		{[]string{"-rebalance", "0.01"}, "-models"},
		{[]string{"-model", "A", "-weights", "1:2"}, "-models"},
		// Weights only steer the weighted-fair policy.
		{[]string{"-models", "A", "-weights", "1:2"}, "weighted-fair"},
		// The load rebalancer repartitions; it needs a worker per model.
		{[]string{"-models", "A,A", "-gpus", "1", "-rebalance", "0.01"}, "-rebalance"},
		{[]string{"-models", "A", "-rebalance", "-1"}, "-rebalance"},
		// Reservations: count list aligned with -models, exclusive with the
		// rebalancer and dedicated placement, bounded by the pool.
		{[]string{"-models", "A", "-reserve", "1,1"}, "-reserve"},
		{[]string{"-models", "A", "-reserve", "x"}, "-reserve"},
		{[]string{"-models", "A", "-reserve", "-1"}, "-reserve"},
		{[]string{"-models", "A", "-reserve", "1", "-rebalance", "0.01"}, "mutually exclusive"},
		{[]string{"-models", "A", "-placement", "dedicated", "-reserve", "1"}, "dedicated"},
		{[]string{"-models", "A", "-gpus", "2", "-reserve", "3"}, "-reserve"},
		{[]string{"-models", "A,A", "-gpus", "2", "-reserve", "2,0"}, "shared"},
		// Autoscaling: sub-flags without -autoscale-max are dead, the
		// rebalancer fights the autoscaler over the pool's shape, and the
		// ceiling cannot sit below the initial worker count.
		{[]string{"-models", "A", "-autoscale-every", "0.1"}, "-autoscale-max"},
		{[]string{"-models", "A", "-autoscale-lag", "0.1"}, "-autoscale-max"},
		{[]string{"-models", "A", "-autoscale-max", "-1"}, "-autoscale-max"},
		{[]string{"-models", "A", "-gpus", "2", "-autoscale-max", "1"}, "-autoscale-max"},
		{[]string{"-models", "A", "-autoscale-max", "2", "-rebalance", "0.01"}, "mutually exclusive"},
		{[]string{"-models", "A", "-autoscale-max", "2", "-autoscale-every", "0"}, "-autoscale-every"},
		{[]string{"-models", "A", "-autoscale-max", "2", "-autoscale-lag", "-1"}, "-autoscale-lag"},
		{[]string{"-models", "A", "-placement", "dedicated", "-autoscale-max", "2"}, "dedicated"},
		// Worker classes: one per -gpus entry, known device names only, and
		// the explicit -device flag contradicts per-worker devices.
		{[]string{"-models", "A", "-gpus", "2", "-worker-classes", "V100"}, "-worker-classes"},
		{[]string{"-models", "A", "-gpus", "1", "-worker-classes", "H100"}, "H100"},
		{[]string{"-models", "A", "-gpus", "1", "-device", "A100", "-worker-classes", "A100"}, "-device"},
		// The autoscale class needs the heterogeneous pool and a real device.
		{[]string{"-models", "A", "-autoscale-max", "2", "-autoscale-class", "A100"}, "-worker-classes"},
		{[]string{"-models", "A", "-gpus", "1", "-worker-classes", "V100", "-autoscale-max", "2", "-autoscale-class", "H100"}, "H100"},
	}
	for _, c := range cases {
		err := run(c.args, io.Discard)
		if err == nil {
			t.Errorf("run(%v) succeeded, want error", c.args)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("run(%v) error %q does not mention %q", c.args, err, c.want)
		}
	}
}

// The elastic heterogeneous pool through the run() seam: preemption,
// V100+A100 worker classes and autoscaling all leave their marks on the
// report, deterministically.
func TestRunFleetElasticMode(t *testing.T) {
	args := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-requests", "60", "-qps", "150000",
		"-gpus", "2", "-queue", "64",
		"-degrade", "split-tail", "-tail", "0.5", "-deadline", "0.02",
		"-preempt", "-worker-classes", "V100,A100",
		"-autoscale-max", "4", "-autoscale-every", "0.00002", "-autoscale-lag", "0.00001",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{
		"V100+A100 pool",
		"preemptions:", "yielded to higher-priority arrivals",
		"autoscale:", "scale-outs", "drains", "worker lifetimes",
		"added gpu2", "[V100]", "[A100]",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("elastic fleet output missing %q in:\n%s", want, s)
		}
	}
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != s {
		t.Error("elastic fleet mode is not deterministic: two runs printed different reports")
	}
}

// Reservations through the run() seam: a reserved floor for the interactive
// model still serves everyone, and the report stays deterministic.
func TestRunFleetReserveMode(t *testing.T) {
	args := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-requests", "24", "-qps", "4000",
		"-gpus", "3", "-queue", "32", "-reserve", "1,0",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != out.String() {
		t.Error("reserved fleet mode is not deterministic: two runs printed different reports")
	}
}

// Fleet mode with the cache tier through the run() seam: the report carries
// the tier's accounting and stays deterministic, and the lru tier must not
// hit less than the frozen static allocation on the same trace.
func TestRunFleetModeWithCache(t *testing.T) {
	args := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-requests", "24", "-qps", "4000",
		"-gpus", "2", "-queue", "32",
		"-cache-budget", "2", "-cache-policy", "lru", "-cache-retier", "0.01",
	}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"embedding-cache tier: policy=lru", "hit-rate=", "model A/0", "tenant hi", "penalty"} {
		if !strings.Contains(s, want) {
			t.Errorf("cache fleet output missing %q in:\n%s", want, s)
		}
	}
	var again bytes.Buffer
	if err := run(args, &again); err != nil {
		t.Fatal(err)
	}
	if again.String() != s {
		t.Error("cache fleet mode is not deterministic: two runs printed different reports")
	}
}

func TestParseTenants(t *testing.T) {
	got, err := parseTenants("interactive:2, bulk:0:8:5.5", 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []fleet.TenantSpec{
		{Name: "interactive", Priority: 2},
		{Name: "bulk", Priority: 0, Quota: 8, Deadline: 0.0055},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("parseTenants = %+v, want %+v", got, want)
	}

	def, err := parseTenants("", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 3 || def[2].Name != "tenant2" || def[0].Priority != 0 {
		t.Errorf("default tenants = %+v", def)
	}

	for _, bad := range []string{"x", "x:high", "x:1:many", "x:1:2:soon", ":1", "x:1:2:3:4", "x:-1:-2"} {
		if _, err := parseTenants(bad, 1); err == nil {
			t.Errorf("parseTenants(%q) succeeded, want error", bad)
		}
	}
}

// syncBuffer lets the test read run()'s output while the gateway goroutine is
// still writing it.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// Gateway validation fails fast, before any pool is tuned or a socket opened.
func TestRunRejectsBadGatewayFlags(t *testing.T) {
	cases := [][]string{
		{"-gpus", "0"},
		{"-gpus", "-1"},
		{"-queue", "-1"},
		{"-requests", "0"},
		{"-scale", "0"},
		{"-qps", "0"},
		{"-warp", "0"},
		{"-warp", "-3"},
		{"-warp", "+Inf"},
		{"-serve-duration", "-1"},
		{"-listen", "127.0.0.1:0"},      // gateway needs -models
		{"-replay-session", "nope.log"}, // replay needs -models
		{"-models", "A", "-listen", ":0", "-drift", "2"}, // drift is batch-only
		{"-models", "A", "-replay-session", "/nonexistent/x.log", "-scale", "400"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// The tentpole, end to end through the CLI seam: a live time-warped gateway
// session over a two-model fleet pool, driven by concurrent HTTP clients,
// recorded to a session log, then verified bit-identically by a *separate*
// run() invocation that rebuilds the pool from the same flags — the
// cross-process replay story, minus the process boundary.
func TestRunGatewayServeAndReplaySession(t *testing.T) {
	sess := filepath.Join(t.TempDir(), "session.log")
	poolFlags := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-gpus", "2", "-queue", "16", "-qps", "4000",
		"-cache-budget", "2", "-cache-policy", "lru", "-cache-retier", "0.01",
	}
	serveArgs := append(append([]string{}, poolFlags...),
		"-listen", "127.0.0.1:0", "-warp", "5000",
		"-serve-duration", "1.5", "-session", sess,
	)
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(serveArgs, &out) }()

	addrRe := regexp.MustCompile(`listening on (http://\S+) `)
	var base string
	for deadline := time.Now().Add(60 * time.Second); base == ""; {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("gateway exited before listening (err=%v):\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never started listening:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"model":%d,"tenant":%d,"size":%d}`, i%2, i%2, 16+i*8)
			resp, err := client.Post(base+"/v1/infer", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				okCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if okCount.Load() == 0 {
		t.Fatalf("no inference request got a 200:\n%s", out.String())
	}

	if err := <-done; err != nil {
		t.Fatalf("gateway run failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"gateway session:", "session log recorded to", "replayed bit-identically",
		"embedding-cache tier: policy=lru",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("gateway output missing %q in:\n%s", want, s)
		}
	}

	// Offline verification by a fresh invocation rebuilding the pool from the
	// same flags — this is what -replay-session in a new process does.
	replayArgs := append(append([]string{}, poolFlags...), "-replay-session", sess)
	var rout bytes.Buffer
	if err := run(replayArgs, &rout); err != nil {
		t.Fatalf("replay-session diverged: %v\n%s", err, rout.String())
	}
	for _, want := range []string{"bit-identically", "embedding-cache tier: policy=lru"} {
		if !strings.Contains(rout.String(), want) {
			t.Errorf("replay output missing %q:\n%s", want, rout.String())
		}
	}

	// A pool built with *different* flags must not verify: the session replay
	// is a real check, not a formality. A different tuning scale changes every
	// service time, so the recorded sojourns cannot reproduce. (The elastic
	// variant of this cross-process story lives in
	// TestRunGatewayElasticReplaySession.)
	wrongArgs := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "300", "-gpus", "2", "-queue", "16", "-qps", "4000",
		"-cache-budget", "2", "-cache-policy", "lru", "-cache-retier", "0.01",
		"-replay-session", sess,
	}
	if err := run(wrongArgs, io.Discard); err == nil {
		t.Error("replay against a differently tuned pool verified the session")
	}

	// Likewise the cache tier is part of the pool's identity: dropping it (or
	// shrinking its budget) changes the recorded cold-row penalties, so the
	// same session must fail to verify against a cache-less rebuild.
	noCacheArgs := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-gpus", "2", "-queue", "16", "-qps", "4000",
		"-replay-session", sess,
	}
	if err := run(noCacheArgs, io.Discard); err == nil {
		t.Error("replay without the recorded cache tier verified the session")
	}
}

// The elastic acceptance gate through the CLI seam: a live gateway session
// over a preemption-armed, autoscaling, heterogeneous (V100+A100) pool must
// record a session log that a fresh run() invocation — rebuilding the pool
// from the same flags, per-class probes and all — replays bit-identically.
func TestRunGatewayElasticReplaySession(t *testing.T) {
	sess := filepath.Join(t.TempDir(), "elastic.log")
	poolFlags := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-gpus", "2", "-queue", "32", "-qps", "4000",
		"-degrade", "split-tail", "-deadline", "0.02",
		"-preempt", "-worker-classes", "V100,A100",
		"-autoscale-max", "4", "-autoscale-every", "0.00002", "-autoscale-lag", "0.00001",
	}
	serveArgs := append(append([]string{}, poolFlags...),
		"-listen", "127.0.0.1:0", "-warp", "5000",
		"-serve-duration", "1.5", "-session", sess,
	)
	var out syncBuffer
	done := make(chan error, 1)
	go func() { done <- run(serveArgs, &out) }()

	addrRe := regexp.MustCompile(`listening on (http://\S+) `)
	var base string
	for deadline := time.Now().Add(60 * time.Second); base == ""; {
		if m := addrRe.FindStringSubmatch(out.String()); m != nil {
			base = m[1]
			break
		}
		select {
		case err := <-done:
			t.Fatalf("gateway exited before listening (err=%v):\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never started listening:\n%s", out.String())
		}
		time.Sleep(5 * time.Millisecond)
	}

	client := &http.Client{Timeout: 10 * time.Second}
	var wg sync.WaitGroup
	var okCount atomic.Int64
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Long-tail sizes on the low-priority tenant feed the split path
			// the preemption gate guards.
			size := 16 + i*8
			if i%3 == 0 {
				size = datasynth.LongTailRequest
			}
			body := fmt.Sprintf(`{"model":%d,"tenant":%d,"size":%d}`, i%2, i%2, size)
			resp, err := client.Post(base+"/v1/infer", "application/json", strings.NewReader(body))
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				okCount.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if okCount.Load() == 0 {
		t.Fatalf("no inference request got a 200:\n%s", out.String())
	}

	if err := <-done; err != nil {
		t.Fatalf("gateway run failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"gateway session:", "V100+A100 pool", "replayed bit-identically"} {
		if !strings.Contains(s, want) {
			t.Errorf("elastic gateway output missing %q in:\n%s", want, s)
		}
	}

	// Offline verification by a fresh invocation rebuilding the elastic pool
	// from the same flags — scale events and preemptions must reproduce.
	replayArgs := append(append([]string{}, poolFlags...), "-replay-session", sess)
	var rout bytes.Buffer
	if err := run(replayArgs, &rout); err != nil {
		t.Fatalf("elastic replay-session diverged: %v\n%s", err, rout.String())
	}
	if !strings.Contains(rout.String(), "bit-identically") {
		t.Errorf("replay output missing the verification line:\n%s", rout.String())
	}

	// Dropping the elastic flags changes the pool's identity: the same
	// session must fail to verify against a static homogeneous rebuild.
	staticArgs := []string{
		"-models", "A,A", "-tenants", "hi:1,lo:0",
		"-scale", "400", "-gpus", "2", "-queue", "32", "-qps", "4000",
		"-degrade", "split-tail", "-deadline", "0.02",
		"-replay-session", sess,
	}
	if err := run(staticArgs, io.Discard); err == nil {
		t.Error("replay against a static homogeneous pool verified an elastic session")
	}
}
