package main

import (
	"reflect"
	"testing"

	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/trace"
)

// recordingSystem captures exactly which batch it was asked to measure for
// each size, standing in for a real baseline.
type recordingSystem struct {
	name string
	seen map[int]*embedding.Batch
}

func (r *recordingSystem) Name() string                        { return r.name }
func (r *recordingSystem) Supports([]fusion.FeatureInfo) error { return nil }
func (r *recordingSystem) Measure(_ *gpusim.Device, _ []fusion.FeatureInfo, b *embedding.Batch) (float64, error) {
	size := len(b.Features[0].Offsets) - 1
	r.seen[size] = b
	return float64(size) * 1e-6, nil
}

// Regression test for the shared-rng fairness bug: two systems' service
// functions must observe the *same* pre-generated batch for the same
// request size, regardless of measurement order.
func TestSystemsObserveIdenticalBatches(t *testing.T) {
	cfg := datasynth.Scaled(datasynth.ModelA(), 50)
	reqs, err := trace.Generate(60, trace.GeneratorConfig{
		QPS: 1000, MaxBatch: splitCap, TailProb: 0.1,
		TailSize: datasynth.LongTailRequest, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	batches, err := prebuildBatches(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range reqs {
		if _, ok := batches[quantize(r.Size)]; !ok {
			t.Fatalf("no batch for request size %d", r.Size)
		}
	}

	dev := gpusim.V100()
	a := &recordingSystem{name: "A", seen: make(map[int]*embedding.Batch)}
	b := &recordingSystem{name: "B", seen: make(map[int]*embedding.Batch)}
	for _, sys := range []*recordingSystem{a, b} {
		if _, err := trace.Serve(reqs, serviceFor(sys, dev, nil, batches)); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.seen) == 0 || len(a.seen) != len(b.seen) {
		t.Fatalf("systems saw %d and %d sizes", len(a.seen), len(b.seen))
	}
	for size, ba := range a.seen {
		bb, ok := b.seen[size]
		if !ok {
			t.Fatalf("system B never measured size %d", size)
		}
		if ba != bb {
			t.Errorf("size %d: systems measured different batch instances", size)
		}
	}

	// The table itself is deterministic: rebuilding it yields batches with
	// identical contents (not merely identical pointers within one run).
	again, err := prebuildBatches(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(batches) {
		t.Fatalf("rebuild produced %d sizes, want %d", len(again), len(batches))
	}
	for size, b1 := range batches {
		b2 := again[size]
		if b2 == nil || !reflect.DeepEqual(b1.Features[0], b2.Features[0]) {
			t.Errorf("size %d: rebuilt batch differs", size)
		}
	}
}

// The split-at-cap fallback can only dispatch sizes that exist in the
// shared batch table.
func TestPrebuildCoversSplitChunks(t *testing.T) {
	cfg := datasynth.Scaled(datasynth.ModelA(), 50)
	reqs := []trace.Request{{Arrival: 0, Size: datasynth.LongTailRequest}}
	batches, err := prebuildBatches(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range []int{quantize(datasynth.LongTailRequest), quantize(splitCap)} {
		if _, ok := batches[size]; !ok {
			t.Errorf("batch table missing size %d", size)
		}
	}
}
