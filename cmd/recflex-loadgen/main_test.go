package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/gateway"
)

// Flag validation fails fast with a clear message, before any socket is dialed.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-rate", "0"},
		{"-rate", "-5"},
		{"-rate", "+Inf"},
		{"-requests", "0"},
		{"-requests", "-3"},
		{"-workers", "0"},
		{"-workers", "-1"},
		{"-model", "-1"},
		{"-tenant", "-2"},
		{"-deadline-sim", "-0.5"},
		{"-arrival", "bursty"},
		{"-arrival", "diurnal:0"},
		{"-arrival", "diurnal:10:2"},
		{"-arrival", "flash:1:2"},
		{"-arrival", "flash:1:2:0.5"},
		{"-sizes", "zipf:2"},
		{"-url", ""},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// Happy path against a stand-in gateway: the CLI prints the open-loop banner,
// the counters and the latency line, and exits cleanly when nothing failed.
func TestRunAgainstFakeGateway(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		json.NewEncoder(w).Encode(gateway.InferResponse{Outcome: "served"})
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{
		"-url", srv.URL, "-rate", "2000", "-arrival", "fixed",
		"-requests", "12", "-workers", "4", "-sizes", "fixed:32",
	}, &out)
	if err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	if got := hits.Load(); got != 12 {
		t.Errorf("server saw %d requests, want 12", got)
	}
	s := out.String()
	for _, want := range []string{"open-loop load", "12 sent, 12 served", "wall latency from intended send"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q in:\n%s", want, s)
		}
	}

	// Shaped arrivals ride the same path: a diurnal schedule with a short
	// period drains against the fake gateway and reports its spelling.
	out.Reset()
	err = run([]string{
		"-url", srv.URL, "-rate", "4000", "-arrival", "diurnal:0.05:0.9",
		"-requests", "8", "-workers", "4", "-sizes", "fixed:16",
	}, &out)
	if err != nil {
		t.Fatalf("diurnal run failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "diurnal(4000/s, period 0.05s, amplitude 0.9)") {
		t.Errorf("banner missing diurnal spelling:\n%s", out.String())
	}
}

// Transport-level failures exit non-zero: an unreachable gateway is an error,
// not a zero-latency success.
func TestRunFailsOnErrors(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()

	var out bytes.Buffer
	err := run([]string{"-url", srv.URL, "-rate", "5000", "-requests", "5", "-workers", "2"}, &out)
	if err == nil {
		t.Fatalf("run succeeded although every request failed:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "failed") {
		t.Errorf("error does not mention failed requests: %v", err)
	}
}
