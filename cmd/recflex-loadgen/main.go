// Command recflex-loadgen drives an open-loop load test against a running
// recflex-serve gateway (-listen mode). The full arrival schedule is drawn up
// front from a seeded process — Poisson by default — so a slow or stalled
// gateway cannot push intended send times back, and every latency is measured
// from the request's *intended* send time. That makes the reported tail
// coordinated-omission correct: queueing behind a saturated server is charged
// to the requests that suffered it instead of silently thinning the stream.
//
// Workers bound how many requests are on the wire at once over persistent
// keep-alive connections; they never pace the schedule.
//
// Usage:
//
//	recflex-serve -models A,C -listen 127.0.0.1:8080 -warp 1000 &
//	recflex-loadgen -url http://127.0.0.1:8080 -rate 200 -requests 1000 \
//	    -arrival poisson -sizes uniform:32:512 -workers 16
//
// Besides poisson and fixed, -arrival accepts the shaped processes
// diurnal[:PERIOD[:AMPLITUDE]] (sinusoid-modulated rate, a compressed
// day) and flash[:START:DURATION:FACTOR] (a one-shot burst window over
// the baseline rate) — both thinning-exact and seeded like the rest of
// the schedule.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"time"

	"repro/internal/datasynth"
	"repro/internal/gateway"
	"repro/internal/report"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-loadgen: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags in, summary out,
// every failure as an error and a non-zero exit.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("recflex-loadgen", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		url      = fs.String("url", "http://127.0.0.1:8080", "gateway base URL")
		rate     = fs.Float64("rate", 100, "mean arrival rate in requests per wall second")
		arrival  = fs.String("arrival", "poisson", "arrival process: poisson, fixed, diurnal[:PERIOD[:AMPLITUDE]] or flash[:START:DURATION:FACTOR]")
		sizes    = fs.String("sizes", "fixed:256", "request size distribution: fixed:K, uniform:LO:HI, normal:MU:SIGMA or lognormal:MU:SIGMA[:MAX]")
		requests = fs.Int("requests", 100, "total requests to send")
		workers  = fs.Int("workers", 8, "in-flight concurrency bound (never paces the schedule)")
		model    = fs.Int("model", 0, "pool model index to target")
		tenant   = fs.Int("tenant", 0, "pool tenant index to target")
		deadline = fs.Float64("deadline-sim", 0, "per-request relative deadline in simulated seconds (0 = none)")
		seed     = fs.Int64("seed", 1, "schedule and size seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Validate at the flag boundary with clear messages; ParseArrival also
	// guards the rate, but a bad -requests or -workers would otherwise only
	// surface from deep inside the run loop.
	if !(*rate > 0) || math.IsInf(*rate, 0) {
		return fmt.Errorf("-rate must be positive and finite, got %g", *rate)
	}
	if *requests <= 0 {
		return fmt.Errorf("-requests must be positive, got %d", *requests)
	}
	if *workers <= 0 {
		return fmt.Errorf("-workers must be positive, got %d", *workers)
	}
	if *model < 0 || *tenant < 0 {
		return fmt.Errorf("-model and -tenant are pool indices and must be >= 0, got %d and %d", *model, *tenant)
	}
	if *deadline < 0 {
		return fmt.Errorf("-deadline-sim must be >= 0, got %g", *deadline)
	}
	arr, err := datasynth.ParseArrival(*arrival, *rate)
	if err != nil {
		return err
	}
	dist, err := datasynth.ParseSizeDist(*sizes)
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "open-loop load: %d requests to %s, %s arrivals, sizes %s, %d workers (coordinated-omission-correct latencies)\n",
		*requests, *url, arr, *sizes, *workers)
	res, err := gateway.RunLoadgen(gateway.LoadgenConfig{
		URL:         *url,
		Arrival:     arr,
		Sizes:       dist,
		Model:       *model,
		Tenant:      *tenant,
		DeadlineSim: *deadline,
		Requests:    *requests,
		Workers:     *workers,
		Seed:        *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "done in %v wall: %d sent, %d served, %d shed, %d errors, %d lost\n",
		res.Elapsed.Round(time.Millisecond), res.Sent, res.Served, res.Shed, res.Errors, res.Lost)
	fmt.Fprintf(w, "wall latency from intended send: p50 %s p95 %s p99 %s\n",
		report.FmtUS(res.P50.Seconds()), report.FmtUS(res.P95.Seconds()), report.FmtUS(res.P99.Seconds()))
	if res.Errors > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Errors, res.Sent)
	}
	if res.Lost > 0 {
		return fmt.Errorf("%d of %d requests were accepted but never answered", res.Lost, res.Sent)
	}
	return nil
}
