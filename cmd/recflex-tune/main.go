// Command recflex-tune runs RecFlex's interference-aware two-stage schedule
// tuner on one of the evaluation models and reports the selected schedules,
// occupancy and expected fused-kernel latency.
//
// Usage:
//
//	recflex-tune -model A -device V100 -scale 10 -batches 4
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-tune: ")
	var (
		model    = flag.String("model", "A", "model: A,B,C,D,E,scale10k,mlperf")
		device   = flag.String("device", "V100", "device: V100 or A100")
		scale    = flag.Int("scale", 10, "feature-count divisor (1 = full paper scale)")
		batches  = flag.Int("batches", 4, "historical batches sampled for tuning")
		batchCap = flag.Int("batch-cap", 512, "maximum request batch size")
		workers  = flag.Int("workers", 0, "tuning parallelism (0 = GOMAXPROCS)")
		sepAblat = flag.Bool("separate", false, "also run the separate-combine straw-man tuner")
		outFile  = flag.String("o", "", "save the tuned schedules as JSON (loadable by core.LoadTuned)")
		prune    = flag.Bool("prune", false, "successive-halving pruning in the local stage (sampled first pass, survivors re-scored at full budget)")
		warmFile = flag.String("warm-start", "", "warm-start the search from a previously saved tuning result (a -o file)")
		serial   = flag.Bool("serial", false, "force the serial reference engine (ignores -prune/-warm-start)")
	)
	flag.Parse()

	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(),
		"scale10k": datasynth.Scalability10k(), "mlperf": datasynth.MLPerfLike(),
	}
	cfg, ok := configs[*model]
	if !ok {
		log.Fatalf("unknown model %q", *model)
	}
	cfg = datasynth.Scaled(cfg, *scale)
	var dev *gpusim.Device
	switch *device {
	case "V100":
		dev = gpusim.V100()
	case "A100":
		dev = gpusim.A100()
	default:
		log.Fatalf("unknown device %q", *device)
	}

	sizes := datasynth.RequestSizes(*batches, *batchCap, cfg.Seed^0xBA7C4)
	ds, err := datasynth.GenerateDataset(cfg, *batches, sizes)
	if err != nil {
		log.Fatal(err)
	}
	features := experiments.Features(cfg)
	m := tuner.DefaultModel(features)

	topts := tuner.Options{Parallelism: *workers, Prune: *prune, Serial: *serial}
	if *warmFile != "" {
		incumbent := core.New(dev, features)
		if err := incumbent.LoadTuned(*warmFile); err != nil {
			log.Fatalf("-warm-start: %v", err)
		}
		topts.Warm = tuner.WarmFrom(incumbent.Tuned())
	}

	start := time.Now()
	rf := core.New(dev, features)
	if err := rf.Tune(ds.Batches, topts); err != nil {
		log.Fatal(err)
	}
	res := rf.Tuned()
	wall := time.Since(start)

	fmt.Printf("model %s on %s: %d features, %d tuning batches, tuned in %v\n",
		cfg.Name, dev.Name, len(features), len(ds.Batches), wall.Round(time.Millisecond))
	fmt.Printf("selected occupancy: %d blocks/SM; fused latency over tuning data: %s\n",
		res.Occupancy, report.FmtUS(res.Latency))
	for _, po := range res.PerOccupancy {
		fmt.Printf("  occupancy %2d blocks/SM -> %s\n", po.BlocksPerSM, report.FmtUS(po.Latency))
	}

	counts := map[string]int{}
	for _, c := range res.Choices {
		counts[c.Name()]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
	fmt.Println("schedule distribution:")
	for _, n := range names {
		fmt.Printf("  %4d x %s\n", counts[n], n)
	}

	if *outFile != "" {
		if err := rf.SaveTuned(*outFile); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tuned schedules saved to %s\n", *outFile)
	}

	if *sepAblat {
		sep, err := tuner.SeparateCombine(dev, m, ds.Batches, tuner.Options{Parallelism: *workers})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("separate-combine straw man: fused latency %s (two-stage improvement %s)\n",
			report.FmtUS(sep.Latency), report.FmtRatio(sep.Latency/res.Latency))
	}
}
