// Command recflex-tune runs RecFlex's interference-aware two-stage schedule
// tuner on one of the evaluation models and reports the selected schedules,
// occupancy and expected fused-kernel latency.
//
// Usage:
//
//	recflex-tune -model A -device V100 -scale 10 -batches 4
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-tune: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags in, report out,
// every failure — including invalid flag values — surfaces as an error and a
// non-zero exit.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("recflex-tune", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		model    = fs.String("model", "A", "model: A,B,C,D,E,scale10k,mlperf")
		device   = fs.String("device", "V100", "device: V100 or A100")
		scale    = fs.Int("scale", 10, "feature-count divisor (1 = full paper scale)")
		batches  = fs.Int("batches", 4, "historical batches sampled for tuning")
		batchCap = fs.Int("batch-cap", 512, "maximum request batch size")
		workers  = fs.Int("workers", 0, "tuning parallelism (0 = GOMAXPROCS)")
		sepAblat = fs.Bool("separate", false, "also run the separate-combine straw-man tuner")
		outFile  = fs.String("o", "", "save the tuned schedules as JSON (loadable by core.LoadTuned)")
		prune    = fs.Bool("prune", false, "successive-halving pruning in the local stage (sampled first pass, survivors re-scored at full budget)")
		warmFile = fs.String("warm-start", "", "warm-start the search from a previously saved tuning result (a -o file)")
		serial   = fs.Bool("serial", false, "force the serial reference engine (ignores -prune/-warm-start)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %d", *scale)
	}
	if *batches <= 0 {
		return fmt.Errorf("-batches must be positive, got %d", *batches)
	}
	if *batchCap <= 0 {
		return fmt.Errorf("-batch-cap must be positive, got %d", *batchCap)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}

	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(),
		"scale10k": datasynth.Scalability10k(), "mlperf": datasynth.MLPerfLike(),
	}
	cfg, ok := configs[*model]
	if !ok {
		return fmt.Errorf("unknown model %q", *model)
	}
	cfg = datasynth.Scaled(cfg, *scale)
	var dev *gpusim.Device
	switch *device {
	case "V100":
		dev = gpusim.V100()
	case "A100":
		dev = gpusim.A100()
	default:
		return fmt.Errorf("unknown device %q", *device)
	}

	sizes := datasynth.RequestSizes(*batches, *batchCap, cfg.Seed^0xBA7C4)
	ds, err := datasynth.GenerateDataset(cfg, *batches, sizes)
	if err != nil {
		return err
	}
	features := experiments.Features(cfg)
	m := tuner.DefaultModel(features)

	topts := tuner.Options{Parallelism: *workers, Prune: *prune, Serial: *serial}
	if *warmFile != "" {
		incumbent := core.New(dev, features)
		if err := incumbent.LoadTuned(*warmFile); err != nil {
			return fmt.Errorf("-warm-start: %w", err)
		}
		topts.Warm = tuner.WarmFrom(incumbent.Tuned())
	}

	start := time.Now()
	rf := core.New(dev, features)
	if err := rf.Tune(ds.Batches, topts); err != nil {
		return err
	}
	res := rf.Tuned()
	wall := time.Since(start)

	fmt.Fprintf(w, "model %s on %s: %d features, %d tuning batches, tuned in %v\n",
		cfg.Name, dev.Name, len(features), len(ds.Batches), wall.Round(time.Millisecond))
	fmt.Fprintf(w, "selected occupancy: %d blocks/SM; fused latency over tuning data: %s\n",
		res.Occupancy, report.FmtUS(res.Latency))
	for _, po := range res.PerOccupancy {
		fmt.Fprintf(w, "  occupancy %2d blocks/SM -> %s\n", po.BlocksPerSM, report.FmtUS(po.Latency))
	}

	counts := map[string]int{}
	for _, c := range res.Choices {
		counts[c.Name()]++
	}
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return counts[names[i]] > counts[names[j]] })
	fmt.Fprintln(w, "schedule distribution:")
	for _, n := range names {
		fmt.Fprintf(w, "  %4d x %s\n", counts[n], n)
	}

	if *outFile != "" {
		if err := rf.SaveTuned(*outFile); err != nil {
			return err
		}
		fmt.Fprintf(w, "tuned schedules saved to %s\n", *outFile)
	}

	if *sepAblat {
		sep, err := tuner.SeparateCombine(dev, m, ds.Batches, tuner.Options{Parallelism: *workers})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "separate-combine straw man: fused latency %s (two-stage improvement %s)\n",
			report.FmtUS(sep.Latency), report.FmtRatio(sep.Latency/res.Latency))
	}
	return nil
}
