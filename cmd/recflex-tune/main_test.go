package main

import (
	"bytes"
	"io"
	"path/filepath"
	"strings"
	"testing"
)

// Flag validation fails fast, before any dataset is generated or tuning runs.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-model", "Z"},
		{"-device", "H100"},
		{"-scale", "0"},
		{"-scale", "-10"},
		{"-batches", "0"},
		{"-batch-cap", "0"},
		{"-workers", "-1"},
		{"-warm-start", "/nonexistent/warm.json", "-scale", "400"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// A tiny tuning run through the seam: report printed, schedules saved, and the
// saved file warm-starts a second run.
func TestRunTinyTuneAndWarmStart(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tuned.json")
	args := []string{"-model", "A", "-scale", "400", "-batches", "2", "-o", out}
	var buf bytes.Buffer
	if err := run(args, &buf); err != nil {
		t.Fatalf("run failed: %v\n%s", err, buf.String())
	}
	s := buf.String()
	for _, want := range []string{"tuned in", "selected occupancy", "schedule distribution", "tuned schedules saved to"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q in:\n%s", want, s)
		}
	}

	var warm bytes.Buffer
	if err := run([]string{"-model", "A", "-scale", "400", "-batches", "2", "-warm-start", out}, &warm); err != nil {
		t.Fatalf("warm-started run failed: %v\n%s", err, warm.String())
	}
	if !strings.Contains(warm.String(), "selected occupancy") {
		t.Errorf("warm-started output missing report:\n%s", warm.String())
	}
}
