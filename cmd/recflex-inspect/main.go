// Command recflex-inspect tunes a model and dumps the compiled fused kernel
// in detail: per-feature schedule, block allocation, resource footprint,
// spills, task-map shape and the simulated execution profile — the debugging
// view of what the fusion compiler of Figure 8 generated.
//
// Usage:
//
//	recflex-inspect -model A -scale 25 -batch 256
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/report"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-inspect: ")
	var (
		model    = flag.String("model", "A", "model: A,B,C,D,E,scale10k,mlperf")
		device   = flag.String("device", "V100", "device: V100 or A100")
		scale    = flag.Int("scale", 25, "feature-count divisor")
		batchSz  = flag.Int("batch", 256, "batch size to inspect")
		top      = flag.Int("top", 15, "features to list (by simulated time)")
		timeline = flag.Bool("timeline", false, "render an ASCII timeline of the first SMs")
	)
	flag.Parse()

	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(),
		"scale10k": datasynth.Scalability10k(), "mlperf": datasynth.MLPerfLike(),
	}
	cfg, ok := configs[*model]
	if !ok {
		log.Fatalf("unknown model %q", *model)
	}
	cfg = datasynth.Scaled(cfg, *scale)
	var dev *gpusim.Device
	switch *device {
	case "V100":
		dev = gpusim.V100()
	case "A100":
		dev = gpusim.A100()
	default:
		log.Fatalf("unknown device %q", *device)
	}

	features := experiments.Features(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		historical = append(historical, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		log.Fatal(err)
	}
	tuned := rf.Tuned()

	batch, err := datasynth.GenerateBatch(cfg, *batchSz, rng)
	if err != nil {
		log.Fatal(err)
	}
	fu, err := rf.CompileBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	sim, err := fu.Simulate()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("fused kernel %q on %s\n", fu.Kernel.Name, dev.Name)
	fmt.Printf("  grid: %d blocks, %d threads/block, %d regs/thread, %dB smem/block\n",
		len(fu.Kernel.Blocks), fu.Kernel.Resources.ThreadsPerBlock,
		fu.Kernel.Resources.RegsPerThread, fu.Kernel.Resources.SharedMemPerBlock)
	fmt.Printf("  occupancy: %d blocks/SM (tuned), %d unique schedules after sharing\n",
		tuned.Occupancy, fu.UniqueSchedules)
	comp, dram, l2 := fu.Kernel.TotalWork()
	fmt.Printf("  work: %.3g Mcycles compute, %.2f MB DRAM, %.2f MB L2\n", comp/1e6, dram/1e6, l2/1e6)
	fmt.Printf("  simulated: %s, %.0f GB/s (%.1f%% of peak), %.1f active threads/warp\n",
		report.FmtUS(sim.Time), sim.Counters.MemoryThroughput/1e9,
		sim.Counters.MaxBandwidthPct, sim.Counters.AvgActiveThreadsPerWarp)

	spilled := 0
	for _, s := range fu.SpilledRegs {
		if s > 0 {
			spilled++
		}
	}
	fmt.Printf("  spilling features: %d of %d\n", spilled, len(features))

	// Per-feature profile, heaviest first.
	type row struct {
		f      int
		time   float64
		blocks int
	}
	rows := make([]row, 0, len(features))
	for f := range features {
		rows = append(rows, row{f, sim.TagTime[f], int(fu.Map.Allocated[f])})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].time > rows[j].time })
	t := &report.Table{
		Title:  fmt.Sprintf("top %d features by summed block time", *top),
		Header: []string{"Feature", "Dim", "Schedule", "Blocks", "Sum block time", "Spill"},
	}
	for i, r := range rows {
		if i >= *top {
			break
		}
		t.AddRow(features[r.f].Name,
			fmt.Sprintf("%d", features[r.f].Dim),
			tuned.Choices[r.f].Name(),
			fmt.Sprintf("%d", r.blocks),
			report.FmtUS(r.time),
			fmt.Sprintf("%d", fu.SpilledRegs[r.f]))
	}
	if err := t.Write(log.Writer()); err != nil {
		log.Fatal(err)
	}

	if *timeline {
		if err := report.Timeline(log.Writer(), "block residency (first 16 SMs)",
			sim.BlockStart, sim.BlockTime, sim.BlockSM, 16, 100); err != nil {
			log.Fatal(err)
		}
	}
}
