package main

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// Flag validation fails fast, before any experiment starts.
func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-scale", "0"},
		{"-scale", "-1"},
		{"-tune", "0"},
		{"-eval", "0"},
		{"-workers", "-1"},
		{"-perf-count", "0", "-perf", "x.json"},
		{"-perf-regress", "-0.1", "-perf", "x.json"},
		{"-exp", "fig99"},
		{"-perf", "out.json", "-perf-baseline", "/nonexistent/base.json"},
	}
	for _, args := range cases {
		if err := run(args, io.Discard); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

// The cheap static experiments run through the seam and print their tables.
func TestRunStaticExperiments(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "table1,fig3"}, &out); err != nil {
		t.Fatalf("run failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{"[table1 finished in", "[fig3 finished in", "all experiments done in"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q in:\n%s", want, s)
		}
	}
}
