// Command recflex-bench reproduces the paper's evaluation: every table and
// figure of §VI (Tables I-II, Figures 2-3, 9-13) plus the scalability,
// MLPerf-parity and overhead studies.
//
// Usage:
//
//	recflex-bench -exp all -scale 10 -eval 8
//	recflex-bench -exp fig9,fig11 -scale 25 -eval 4
//	recflex-bench -exp all -paper          # full paper scale (hours)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-bench: ")
	var (
		exp     = flag.String("exp", "all", "experiments: table1,fig2,fig3,fig9,fig10,table2,fig11,fig12,fig13,scale,mlperf,overhead,ext,eq2,drift,fleet or all")
		scale   = flag.Int("scale", 10, "feature-count divisor (1 = full paper scale)")
		tuneB   = flag.Int("tune", 2, "tuning batches")
		evalB   = flag.Int("eval", 8, "evaluation batches (paper: 128)")
		workers = flag.Int("workers", 0, "tuning parallelism (0 = GOMAXPROCS)")
		paper   = flag.Bool("paper", false, "use the full paper-scale configuration (overrides scale/tune/eval)")
		csvDir  = flag.String("csv", "", "also export figure data as CSV files into this directory")
	)
	flag.Parse()

	cfg := experiments.Config{
		Scale:       *scale,
		TuneBatches: *tuneB,
		EvalBatches: *evalB,
		BatchCap:    512,
		Occupancies: []int{1, 2, 3, 4, 6, 8},
		Parallelism: *workers,
	}
	if *paper {
		cfg = experiments.PaperConfig()
		cfg.Parallelism = *workers
	}
	s := experiments.NewSuite(cfg)
	w := os.Stdout

	runners := map[string]func() error{
		"table1":   func() error { return experiments.PrintTable1(w) },
		"fig2":     func() error { return s.PrintFig2(w) },
		"fig3":     func() error { return experiments.PrintFig3(w) },
		"fig9":     func() error { return s.PrintFig9(w) },
		"fig10":    func() error { return s.PrintFig10(w) },
		"table2":   func() error { return s.PrintTable2(w) },
		"fig11":    func() error { return s.PrintFig11(w) },
		"fig12":    func() error { return s.PrintFig12(w) },
		"fig13":    func() error { return s.PrintFig13(w) },
		"scale":    func() error { return s.PrintScalability(w) },
		"mlperf":   func() error { return s.PrintMLPerf(w) },
		"overhead": func() error { return s.PrintOverhead(w) },
		"ext":      func() error { return s.PrintExtensions(w) },
		"eq2":      func() error { return s.PrintEq2Fidelity(w) },
		"drift":    func() error { return s.PrintDriftStudy(w) },
		"fleet":    func() error { return s.PrintFleetStudy(w) },
	}
	order := []string{"table1", "fig2", "fig3", "fig9", "fig10", "table2", "fig11", "fig12", "fig13", "scale", "mlperf", "overhead", "ext", "eq2", "drift", "fleet"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		selected = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, name := range selected {
		run, ok := runners[strings.TrimSpace(name)]
		if !ok {
			log.Fatalf("unknown experiment %q (valid: %s)", name, strings.Join(order, ","))
		}
		t0 := time.Now()
		if err := run(); err != nil {
			log.Fatalf("experiment %s: %v", name, err)
		}
		fmt.Fprintf(w, "[%s finished in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}
	if *csvDir != "" {
		if err := s.ExportCSV(*csvDir); err != nil {
			log.Fatalf("csv export: %v", err)
		}
		fmt.Fprintf(w, "figure data exported to %s\n", *csvDir)
	}
	fmt.Fprintf(w, "\nall experiments done in %v (scale=%d, eval batches=%d)\n",
		time.Since(start).Round(time.Millisecond), s.Cfg.Scale, s.Cfg.EvalBatches)
}
