// Command recflex-bench reproduces the paper's evaluation: every table and
// figure of §VI (Tables I-II, Figures 2-3, 9-13) plus the scalability,
// MLPerf-parity and overhead studies.
//
// Usage:
//
//	recflex-bench -exp all -scale 10 -eval 8
//	recflex-bench -exp fig9,fig11 -scale 25 -eval 4
//	recflex-bench -exp all -paper          # full paper scale (hours)
//
// With -perf it instead measures the hot-path benchmark suite
// (internal/perf) and emits a BENCH_*.json perf-trajectory point:
//
//	recflex-bench -perf BENCH_9.json -perf-baseline BENCH_7.json
//
// When a baseline is given, its measurements are embedded in the emitted
// file (so each file carries its own before/after pair) and the run fails
// if any benchmark regressed by more than -perf-regress — this is the CI
// perf gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/perf"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-bench: ")
	if err := run(os.Args[1:], os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run is the whole command behind a testable seam: flags in, experiment
// report out, every failure — including invalid flag values — surfaces as an
// error and a non-zero exit.
func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("recflex-bench", flag.ContinueOnError)
	fs.SetOutput(w)
	var (
		exp     = fs.String("exp", "all", "experiments: table1,fig2,fig3,fig9,fig10,table2,fig11,fig12,fig13,scale,mlperf,overhead,ext,eq2,drift,fleet,cache,elastic or all")
		scale   = fs.Int("scale", 10, "feature-count divisor (1 = full paper scale)")
		tuneB   = fs.Int("tune", 2, "tuning batches")
		evalB   = fs.Int("eval", 8, "evaluation batches (paper: 128)")
		workers = fs.Int("workers", 0, "tuning parallelism (0 = GOMAXPROCS)")
		paper   = fs.Bool("paper", false, "use the full paper-scale configuration (overrides scale/tune/eval)")
		csvDir  = fs.String("csv", "", "also export figure data as CSV files into this directory")

		perfOut     = fs.String("perf", "", "measure the hot-path benchmark suite and write a BENCH_*.json file (skips experiments)")
		perfBase    = fs.String("perf-baseline", "", "BENCH_*.json to embed as the baseline and gate regressions against")
		perfCount   = fs.Int("perf-count", 3, "benchmark repetitions per case; the fastest run is kept")
		perfRegress = fs.Float64("perf-regress", 0.25, "maximum tolerated ns/op regression vs the baseline (0.25 = +25%)")
		perfNote    = fs.String("perf-note", "", "free-form note recorded in the emitted BENCH file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scale <= 0 {
		return fmt.Errorf("-scale must be positive, got %d", *scale)
	}
	if *tuneB <= 0 {
		return fmt.Errorf("-tune must be positive, got %d", *tuneB)
	}
	if *evalB <= 0 {
		return fmt.Errorf("-eval must be positive, got %d", *evalB)
	}
	if *workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (0 = GOMAXPROCS), got %d", *workers)
	}
	if *perfCount <= 0 {
		return fmt.Errorf("-perf-count must be positive, got %d", *perfCount)
	}
	if *perfRegress < 0 {
		return fmt.Errorf("-perf-regress must be >= 0, got %g", *perfRegress)
	}

	if *perfOut != "" {
		return runPerf(*perfOut, *perfBase, *perfNote, *perfCount, *perfRegress)
	}

	cfg := experiments.Config{
		Scale:       *scale,
		TuneBatches: *tuneB,
		EvalBatches: *evalB,
		BatchCap:    512,
		Occupancies: []int{1, 2, 3, 4, 6, 8},
		Parallelism: *workers,
	}
	if *paper {
		cfg = experiments.PaperConfig()
		cfg.Parallelism = *workers
	}
	s := experiments.NewSuite(cfg)

	runners := map[string]func() error{
		"table1":   func() error { return experiments.PrintTable1(w) },
		"fig2":     func() error { return s.PrintFig2(w) },
		"fig3":     func() error { return experiments.PrintFig3(w) },
		"fig9":     func() error { return s.PrintFig9(w) },
		"fig10":    func() error { return s.PrintFig10(w) },
		"table2":   func() error { return s.PrintTable2(w) },
		"fig11":    func() error { return s.PrintFig11(w) },
		"fig12":    func() error { return s.PrintFig12(w) },
		"fig13":    func() error { return s.PrintFig13(w) },
		"scale":    func() error { return s.PrintScalability(w) },
		"mlperf":   func() error { return s.PrintMLPerf(w) },
		"overhead": func() error { return s.PrintOverhead(w) },
		"ext":      func() error { return s.PrintExtensions(w) },
		"eq2":      func() error { return s.PrintEq2Fidelity(w) },
		"drift":    func() error { return s.PrintDriftStudy(w) },
		"fleet":    func() error { return s.PrintFleetStudy(w) },
		"cache":    func() error { return s.PrintCacheStudy(w) },
		"elastic":  func() error { return s.PrintElasticStudy(w) },
	}
	order := []string{"table1", "fig2", "fig3", "fig9", "fig10", "table2", "fig11", "fig12", "fig13", "scale", "mlperf", "overhead", "ext", "eq2", "drift", "fleet", "cache", "elastic"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		selected = strings.Split(*exp, ",")
	}
	start := time.Now()
	for _, name := range selected {
		runExp, ok := runners[strings.TrimSpace(name)]
		if !ok {
			return fmt.Errorf("unknown experiment %q (valid: %s)", name, strings.Join(order, ","))
		}
		t0 := time.Now()
		if err := runExp(); err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		fmt.Fprintf(w, "[%s finished in %v]\n", name, time.Since(t0).Round(time.Millisecond))
	}
	if *csvDir != "" {
		if err := s.ExportCSV(*csvDir); err != nil {
			return fmt.Errorf("csv export: %w", err)
		}
		fmt.Fprintf(w, "figure data exported to %s\n", *csvDir)
	}
	fmt.Fprintf(w, "\nall experiments done in %v (scale=%d, eval batches=%d)\n",
		time.Since(start).Round(time.Millisecond), s.Cfg.Scale, s.Cfg.EvalBatches)
	return nil
}

// runPerf measures the hot-path suite, writes the BENCH_*.json trajectory
// point and, when a baseline file is given, embeds it and gates ns/op
// regressions against it.
func runPerf(out, basePath, note string, count int, maxRegress float64) error {
	var baseline *perf.File
	if basePath != "" {
		f, err := perf.ReadFile(basePath)
		if err != nil {
			return fmt.Errorf("perf baseline: %w", err)
		}
		baseline = f
	}

	start := time.Now()
	log.Printf("measuring %d hot-path benchmarks (count=%d)...", len(perf.Cases()), count)
	entries := perf.Measure(count)
	if baseline != nil {
		perf.AttachBaseline(entries, baseline)
	}
	f := perf.NewFile(note, entries)
	if err := f.WriteFile(out); err != nil {
		return err
	}
	for _, e := range entries {
		line := fmt.Sprintf("%-28s %12.0f ns/op %8d B/op %6d allocs/op",
			e.Name, e.Current.NsPerOp, e.Current.BytesPerOp, e.Current.AllocsPerOp)
		if e.Current.ReqPerSec > 0 {
			line += fmt.Sprintf(" %12.0f req/s", e.Current.ReqPerSec)
		}
		if e.Speedup > 0 {
			line += fmt.Sprintf("   %.2fx vs baseline", e.Speedup)
		}
		log.Print(line)
	}
	log.Printf("wrote %s in %v", out, time.Since(start).Round(time.Millisecond))

	if baseline != nil {
		if bad := perf.Compare(baseline, entries, maxRegress); len(bad) > 0 {
			return fmt.Errorf("perf gate failed against %s:\n  %s", basePath, strings.Join(bad, "\n  "))
		}
		log.Printf("perf gate passed against %s (limit +%.0f%% ns/op)", basePath, maxRegress*100)
	}
	return nil
}
