// Command recflex-datagen synthesizes the evaluation datasets of the paper
// (models A-E of Table I, the 10,000-feature scalability set and the
// MLPerf-like low-heterogeneity set) and writes them as .rfds files, mirroring
// the artifact's data_synthesis scripts.
//
// Usage:
//
//	recflex-datagen -out data -model all -batches 128 -scale 1
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datasynth"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("recflex-datagen: ")
	var (
		out      = flag.String("out", "data", "output directory")
		model    = flag.String("model", "all", "model to generate: A,B,C,D,E,scale10k,mlperf or all")
		batches  = flag.Int("batches", 128, "number of batches")
		batchCap = flag.Int("batch-cap", 512, "maximum request batch size")
		scale    = flag.Int("scale", 1, "feature-count divisor (1 = full paper scale)")
	)
	flag.Parse()

	configs := map[string]*datasynth.ModelConfig{
		"A": datasynth.ModelA(), "B": datasynth.ModelB(), "C": datasynth.ModelC(),
		"D": datasynth.ModelD(), "E": datasynth.ModelE(),
		"scale10k": datasynth.Scalability10k(), "mlperf": datasynth.MLPerfLike(),
	}
	var names []string
	if *model == "all" {
		names = []string{"A", "B", "C", "D", "E", "scale10k", "mlperf"}
	} else {
		names = strings.Split(*model, ",")
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	for _, name := range names {
		cfg, ok := configs[strings.TrimSpace(name)]
		if !ok {
			log.Fatalf("unknown model %q", name)
		}
		cfg = datasynth.Scaled(cfg, *scale)
		sizes := datasynth.RequestSizes(*batches, *batchCap, cfg.Seed^0xBA7C4)
		ds, err := datasynth.GenerateDataset(cfg, *batches, sizes)
		if err != nil {
			log.Fatal(err)
		}
		path := filepath.Join(*out, fmt.Sprintf("model_%s.rfds", strings.ReplaceAll(cfg.Name, "/", "_")))
		if err := datasynth.SaveDataset(path, ds); err != nil {
			log.Fatal(err)
		}
		oneHot, multiHot := cfg.CountHot()
		lo, hi := cfg.DimRange()
		stats := datasynth.CollectFeatureStats(cfg, ds.Batches)
		fmt.Printf("%-10s %5d features (%d one-hot, %d multi-hot), dims %d-%d, %d batches, heterogeneity %.2f -> %s\n",
			cfg.Name, len(cfg.Features), oneHot, multiHot, lo, hi, len(ds.Batches),
			datasynth.HeterogeneityIndex(stats), path)
	}
}
