// Package recflex is the public API of RecFlex-Go, a pure-Go reproduction of
// "RecFlex: Enabling Feature Heterogeneity-Aware Optimization for Deep
// Recommendation Models with Flexible Schedules" (SC 2024).
//
// RecFlex optimizes the embedding layers of deep recommendation models by
// giving every feature field its own code schedule inside one fused GPU
// kernel. This reproduction replaces the CUDA backend with a deterministic
// GPU performance simulator (see internal/gpusim and DESIGN.md), so the whole
// system — interference-aware two-stage schedule tuning, heterogeneous
// schedule fusion with runtime thread mapping, the four baseline systems, and
// the paper's full experiment harness — runs anywhere Go runs.
//
// # Quickstart
//
//	dev := recflex.V100()
//	features := []recflex.FeatureInfo{
//		{Name: "user_id", Dim: 32, TableRows: 1 << 16, Pool: recflex.PoolSum},
//		{Name: "clicked_ads", Dim: 8, TableRows: 1 << 14, Pool: recflex.PoolSum},
//	}
//	opt := recflex.New(dev, features)
//	if err := opt.Tune(historicalBatches, recflex.TuneOptions{}); err != nil { ... }
//	outputs, sim, err := opt.Run(tables, batch)
//
// See examples/ for complete programs and cmd/recflex-bench for the paper's
// evaluation harness.
package recflex

import (
	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/embedding"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/sched"
	"repro/internal/tuner"
)

// Device is a simulated GPU configuration.
type Device = gpusim.Device

// V100 returns the simulated NVIDIA V100 of the paper's evaluation.
func V100() *Device { return gpusim.V100() }

// A100 returns the simulated NVIDIA A100 of the paper's evaluation.
func A100() *Device { return gpusim.A100() }

// FeatureInfo describes one feature field: its embedding table shape and
// pooling mode.
type FeatureInfo = fusion.FeatureInfo

// PoolMode selects the pooling reduction of a feature.
type PoolMode = embedding.PoolMode

// Pooling modes.
const (
	PoolSum  = embedding.PoolSum
	PoolMean = embedding.PoolMean
	PoolMax  = embedding.PoolMax
)

// Table is one embedding table.
type Table = embedding.Table

// NewTable allocates a deterministic embedding table.
func NewTable(name string, rows, dim int, seed uint64) (*Table, error) {
	return embedding.NewDeterministicTable(name, rows, dim, seed)
}

// Batch is one inference request: per-feature CSR lookup batches.
type Batch = embedding.Batch

// FeatureBatch is the CSR lookup data of one feature.
type FeatureBatch = embedding.FeatureBatch

// NewFeatureBatch builds a FeatureBatch from per-sample ID lists.
func NewFeatureBatch(perSample [][]int32) FeatureBatch {
	return embedding.NewFeatureBatch(perSample)
}

// Schedule is one code schedule for a feature's embedding operation. The
// built-in families are SubWarp, ThreadPerSample and BlockPerSample; users
// can implement the interface to add custom templates, mirroring the paper's
// user-provided schedule templates.
type Schedule = sched.Schedule

// Built-in schedule template families.
type (
	// SubWarp partitions each warp into lane groups, one sample per group.
	SubWarp = sched.SubWarp
	// ThreadPerSample assigns one thread per sample with a register-resident
	// accumulator.
	ThreadPerSample = sched.ThreadPerSample
	// BlockPerSample dedicates one thread block per sample.
	BlockPerSample = sched.BlockPerSample
)

// DefaultCandidates returns the stock candidate set for a feature dimension.
func DefaultCandidates(dim int) []Schedule { return sched.DefaultCandidates(dim) }

// TuneOptions configures the interference-aware schedule tuner.
type TuneOptions = tuner.Options

// TuneResult is the tuner's output: per-feature schedules and the selected
// occupancy.
type TuneResult = tuner.Result

// Optimizer is a tuned RecFlex instance for one model on one device.
type Optimizer = core.RecFlex

// New creates an Optimizer with the default candidate sets.
func New(dev *Device, features []FeatureInfo) *Optimizer {
	return core.New(dev, features)
}

// NewWithCandidates creates an Optimizer with custom per-feature candidates.
func NewWithCandidates(dev *Device, features []FeatureInfo, candidates [][]Schedule) (*Optimizer, error) {
	return core.NewWithCandidates(dev, features, candidates)
}

// AutoOptions shapes the automatic candidate search.
type AutoOptions = sched.AutoOptions

// NewAuto creates an Optimizer whose candidate sets are generated
// automatically from a sampled batch — the paper's §VII "Automatic
// scheduling" direction: the full template parameter grid is pruned per
// feature with the analytic cost model before the interference-simulated
// search runs.
func NewAuto(dev *Device, features []FeatureInfo, sample *Batch, opts AutoOptions) (*Optimizer, error) {
	m, err := tuner.AutoModel(dev, features, sample, opts)
	if err != nil {
		return nil, err
	}
	return core.NewWithCandidates(dev, features, m.Candidates)
}

// Fused is a compiled fused kernel with its runtime task map.
type Fused = fusion.Fused

// FusionOptions configures fusion compilation directly (occupancy control,
// static-mapping ablations, dispatch mode).
type FusionOptions = fusion.Options

// Mapping and dispatch modes for FusionOptions.
const (
	MapRuntime      = fusion.MapRuntime
	MapStaticAvg    = fusion.MapStaticAvg
	MapStaticMax    = fusion.MapStaticMax
	DispatchIfElse  = fusion.DispatchIfElse
	DispatchFuncPtr = fusion.DispatchFuncPtr
)

// Compile builds a fused kernel from explicit per-feature schedule choices,
// bypassing the tuner — the low-level entry point.
func Compile(dev *Device, features []FeatureInfo, choices []Schedule, batch *Batch, opts FusionOptions) (*Fused, error) {
	return fusion.Compile(dev, features, choices, batch, opts)
}

// Baseline is a comparison system (TensorFlow, RECom, HugeCTR, TorchRec; a
// tuned *Optimizer also satisfies it).
type Baseline = baselines.Baseline

// Baselines returns the four comparison systems of the paper.
func Baselines() []Baseline { return baselines.All() }

// PoolReference computes the ground-truth pooled output of one feature batch
// with the CPU reference executor — every schedule must match it exactly.
func PoolReference(tbl *Table, fb *FeatureBatch, mode PoolMode) ([]float32, error) {
	return embedding.PoolCPU(tbl, fb, mode)
}

// SortedSubWarp is the host-sorted schedule family (extension): sample
// reordering eliminates sub-warp lockstep divergence.
type SortedSubWarp = sched.SortedSubWarp

// StagedTile is the shared-memory staged schedule family.
type StagedTile = sched.StagedTile

// SimResult is the simulator's report for one kernel: time, per-block times,
// per-feature time sums and Nsight-style counters.
type SimResult = gpusim.SimResult

// Counters are the Table-II hardware counters.
type Counters = gpusim.Counters
