// Gateway: the real-time front door over the shared fleet pool. Everything
// else in this repo replays recorded traces; here live HTTP requests arrive on
// the wall clock and a time-warp factor maps them onto the simulated pool —
// at warp 500, one wall second is 500 simulated seconds, so a laptop demo
// exercises minutes of simulated serving in tens of milliseconds.
//
// The demo starts a gateway over a two-model, two-tenant pool, drives it with
// the open-loop load generator (the full arrival schedule is drawn up front
// from a seeded Poisson process, so a stalled server cannot thin the stream —
// latencies are measured from each request's *intended* send time and the
// reported tail is coordinated-omission correct), then closes the session and
// replays the recorded request log offline through the same pool, verifying
// every outcome, sojourn, worker and generation bit for bit. That replay is
// the gateway's core invariant: live serving is the same deterministic engine
// as batch replay, fed incrementally.
//
//	go run ./examples/gateway
package main

import (
	"bytes"
	"fmt"
	"log"
	"net"
	"net/http"

	"repro/internal/datasynth"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	log.SetFlags(0)

	// A small fleet: a ranking model whose service time scales with batch
	// size and a fixed-cost retrieval model, sharing two workers. An
	// interactive tenant outranks a bulk tenant capped at two queue slots.
	pool, err := fleet.NewPool(
		fleet.Config{Queue: trace.QueuePolicy{Workers: 2, QueueDepth: 8}},
		[]fleet.Model{
			{Name: "rank", Service: func(_ float64, size int) (float64, error) {
				return 2e-4 + 1e-6*float64(size), nil
			}},
			{Name: "retrieve", Service: func(float64, int) (float64, error) {
				return 5e-4, nil
			}},
		},
		[]fleet.TenantSpec{
			{Name: "interactive", Priority: 1},
			{Name: "bulk", Priority: 0, Quota: 2},
		},
	)
	if err != nil {
		log.Fatal(err)
	}

	// Open the gateway: warp 500, session log captured in memory. A server
	// deployment would pass an os.File and verify later with
	// recflex-serve -replay-session.
	var sessionLog bytes.Buffer
	g, err := gateway.New(gateway.Config{Pool: pool, Warp: 500, Session: &sessionLog})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: g.Handler()}
	go srv.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("gateway listening on %s (warp 500x)\n", base)

	// Open-loop load: 200 requests at 400/s Poisson, sizes uniform in
	// [16, 512], eight keep-alive workers bounding in-flight concurrency.
	arr, err := datasynth.ParseArrival("poisson", 400)
	if err != nil {
		log.Fatal(err)
	}
	sizes, err := datasynth.ParseSizeDist("uniform:16:512")
	if err != nil {
		log.Fatal(err)
	}
	res, err := gateway.RunLoadgen(gateway.LoadgenConfig{
		URL:      base,
		Arrival:  arr,
		Sizes:    sizes,
		Requests: 200,
		Workers:  8,
		Seed:     42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loadgen: %d sent, %d served, %d shed, %d errors in %v wall\n",
		res.Sent, res.Served, res.Shed, res.Errors, res.Elapsed.Round(1e6))
	fmt.Printf("wall latency from intended send: p50 %s p95 %s p99 %s\n",
		report.FmtUS(res.P50.Seconds()), report.FmtUS(res.P95.Seconds()), report.FmtUS(res.P99.Seconds()))

	st := g.Stats()
	fmt.Printf("gateway: %d admitted, %d served, %d shed; sim clock reached %.1fs\n",
		st.Admitted, st.Served, st.Shed, st.SimNow)
	fmt.Printf("simulated served-sojourn percentiles: p50 %s p95 %s p99 %s\n",
		report.FmtUS(st.P50), report.FmtUS(st.P95), report.FmtUS(st.P99))

	srv.Close()
	ln.Close()
	if _, err := g.Close(); err != nil {
		log.Fatal(err)
	}

	// The invariant: the recorded session replays bit-identically through the
	// same pool, offline.
	sess, err := gateway.ReadSession(bytes.NewReader(sessionLog.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sess.Replay(pool)
	if err != nil {
		log.Fatalf("session diverged from the live run: %v", err)
	}
	fmt.Printf("replayed %d recorded requests bit-identically (%d served over a %.1fs sim makespan)\n",
		len(sess.Requests), rep.Metrics.Served, rep.Metrics.Makespan)
}
