// Serving: an online inference loop with dynamic workloads — request batch
// sizes drawn from a serving distribution, a long-tail request that a
// DeepRecSys-style system would not split, per-request runtime thread mapping
// (compared against the static avg/max strategies of Figure 13),
// distribution-drift detection that triggers the paper's periodic re-tuning,
// and the concurrent serving engine replaying a Poisson trace through two
// simulated GPUs with deadlines and split-at-cap degradation.
//
// The drift check here is offline: it compares two static datasets and
// re-tunes in one blocking step. examples/continuous runs the same story
// online — a supervisor detects the drift mid-trace, re-tunes in the
// background while admission continues, and hot-swaps the schedule set.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelC(), 20) // 40 multi-hot features
	features := experiments.Features(cfg)

	rng := rand.New(rand.NewSource(cfg.Seed))
	makeBatches := func(c *datasynth.ModelConfig, sizes []int) []*embedding.Batch {
		out := make([]*embedding.Batch, len(sizes))
		for i, n := range sizes {
			b, err := datasynth.GenerateBatch(c, n, rng)
			if err != nil {
				log.Fatal(err)
			}
			out[i] = b
		}
		return out
	}

	// Compile-time: tune on recent history.
	historical := makeBatches(cfg, []int{256, 320, 192})
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		log.Fatal(err)
	}
	tuned := rf.Tuned()
	fmt.Printf("tuned %d features, occupancy %d blocks/SM\n\n", len(features), tuned.Occupancy)

	// Derive the static thread mappings from the same history (Fig. 13).
	var history [][]int
	for _, b := range historical {
		fu, err := rf.CompileBatch(b)
		if err != nil {
			log.Fatal(err)
		}
		history = append(history, fu.BlockUsage())
	}
	avgAlloc, err := fusion.StaticAllocation(history, false)
	if err != nil {
		log.Fatal(err)
	}
	maxAlloc, err := fusion.StaticAllocation(history, true)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(b *embedding.Batch, mode fusion.MappingMode, static []int) float64 {
		fu, err := fusion.Compile(dev, features, tuned.Choices, b, fusion.Options{
			TargetBlocksPerSM: tuned.Occupancy,
			Mapping:           mode,
			StaticBlocks:      static,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := fu.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		return r.Time
	}

	// Serving loop: requests of varying size, split at 512.
	requests := datasynth.RequestSizes(8, 512, 99)
	requests = append(requests, datasynth.LongTailRequest) // unsplit long tail
	fmt.Printf("%8s %12s %12s %12s\n", "batch", "runtime", "static-avg", "static-max")
	for _, n := range requests {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		rt := measure(b, fusion.MapRuntime, nil)
		sa := measure(b, fusion.MapStaticAvg, avgAlloc)
		sm := measure(b, fusion.MapStaticMax, maxAlloc)
		tag := ""
		if n == datasynth.LongTailRequest {
			tag = "  <- long tail"
		}
		fmt.Printf("%8d %10.2fus %10.2fus %10.2fus%s\n", n, rt*1e6, sa*1e6, sm*1e6, tag)
	}

	// Concurrent serving engine: a Poisson request trace through two
	// simulated GPUs behind a bounded admission queue, with a 0.5ms
	// deadline — tight enough that an unsplit 2,560-sample tail kernel
	// (~0.7ms above) cannot meet it, forcing the default split-at-cap
	// degradation. The engine resolves kernel times on a concurrent worker
	// pool, replays queueing on a virtual clock, and exposes a full
	// observability snapshot.
	reqs, err := trace.Generate(150, trace.GeneratorConfig{
		QPS: 4000, MaxBatch: 512, TailProb: 0.04,
		TailSize: datasynth.LongTailRequest, Seed: cfg.Seed ^ 0xCAFE,
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := rf.ServeTrace(reqs,
		func(size int) (*embedding.Batch, error) { return datasynth.BatchForSize(cfg, size) },
		64, trace.ServerConfig{
			Workers:    2,
			QueueDepth: 32,
			Deadline:   5e-4,
			SplitCap:   512,
			Policy:     trace.DegradeSplitTail,
		})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcurrent engine: %d requests on 2 GPUs, p50 %.2fus p99 %.2fus\n",
		len(reqs), rep.P50*1e6, rep.P99*1e6)
	fmt.Printf("counters: %s\n", rep.Metrics)
	for g, w := range rep.Metrics.Workers {
		fmt.Printf("  gpu%d: %d units, %.1f%% utilized\n", g, w.Served, w.Utilization*100)
	}
	fmt.Printf("latency histogram:\n%s", rep.Metrics.Latency.Render(36))

	// Distribution drift: pooling factors triple -> the drift detector
	// recommends the periodic re-tune of §IV-A3.
	shifted := datasynth.Drifted(cfg, 3)
	recent := makeBatches(shifted, []int{256, 256})
	drift, err := rf.ShouldRetune(recent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistribution shift detected, re-tune recommended: %v\n", drift)
	if drift {
		if err := rf.Tune(recent, tuner.Options{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("re-tuned: new occupancy %d blocks/SM\n", rf.Tuned().Occupancy)
	}
}
