// Serving: an online inference loop with dynamic workloads — request batch
// sizes drawn from a serving distribution, a long-tail request that a
// DeepRecSys-style system would not split, per-request runtime thread mapping
// (compared against the static avg/max strategies of Figure 13), and
// distribution-drift detection that triggers the paper's periodic re-tuning.
//
//	go run ./examples/serving
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fusion"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelC(), 20) // 40 multi-hot features
	features := experiments.Features(cfg)

	rng := rand.New(rand.NewSource(cfg.Seed))
	makeBatches := func(c *datasynth.ModelConfig, sizes []int) []*embedding.Batch {
		out := make([]*embedding.Batch, len(sizes))
		for i, n := range sizes {
			b, err := datasynth.GenerateBatch(c, n, rng)
			if err != nil {
				log.Fatal(err)
			}
			out[i] = b
		}
		return out
	}

	// Compile-time: tune on recent history.
	historical := makeBatches(cfg, []int{256, 320, 192})
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		log.Fatal(err)
	}
	tuned := rf.Tuned()
	fmt.Printf("tuned %d features, occupancy %d blocks/SM\n\n", len(features), tuned.Occupancy)

	// Derive the static thread mappings from the same history (Fig. 13).
	var history [][]int
	for _, b := range historical {
		fu, err := rf.CompileBatch(b)
		if err != nil {
			log.Fatal(err)
		}
		history = append(history, fu.BlockUsage())
	}
	avgAlloc, err := fusion.StaticAllocation(history, false)
	if err != nil {
		log.Fatal(err)
	}
	maxAlloc, err := fusion.StaticAllocation(history, true)
	if err != nil {
		log.Fatal(err)
	}

	measure := func(b *embedding.Batch, mode fusion.MappingMode, static []int) float64 {
		fu, err := fusion.Compile(dev, features, tuned.Choices, b, fusion.Options{
			TargetBlocksPerSM: tuned.Occupancy,
			Mapping:           mode,
			StaticBlocks:      static,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := fu.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		return r.Time
	}

	// Serving loop: requests of varying size, split at 512.
	requests := datasynth.RequestSizes(8, 512, 99)
	requests = append(requests, datasynth.LongTailRequest) // unsplit long tail
	fmt.Printf("%8s %12s %12s %12s\n", "batch", "runtime", "static-avg", "static-max")
	for _, n := range requests {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		rt := measure(b, fusion.MapRuntime, nil)
		sa := measure(b, fusion.MapStaticAvg, avgAlloc)
		sm := measure(b, fusion.MapStaticMax, maxAlloc)
		tag := ""
		if n == datasynth.LongTailRequest {
			tag = "  <- long tail"
		}
		fmt.Printf("%8d %10.2fus %10.2fus %10.2fus%s\n", n, rt*1e6, sa*1e6, sm*1e6, tag)
	}

	// Distribution drift: pooling factors triple -> the drift detector
	// recommends the periodic re-tune of §IV-A3.
	shifted := datasynth.Drifted(cfg, 3)
	recent := makeBatches(shifted, []int{256, 256})
	drift, err := rf.ShouldRetune(recent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ndistribution shift detected, re-tune recommended: %v\n", drift)
	if drift {
		if err := rf.Tune(recent, tuner.Options{}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("re-tuned: new occupancy %d blocks/SM\n", rf.Tuned().Occupancy)
	}
}
