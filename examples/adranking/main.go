// Ad-ranking: the end-to-end workload that motivates the paper's
// introduction — an online-advertising click-through-rate model with hundreds
// of heterogeneous feature fields feeding an MLP tower. The example builds
// the model from the synthesized model-A generator, tunes RecFlex, and
// reports the full inference latency decomposition (embedding / concat / MLP)
// for every system, plus a CPU reference forward pass for a small slice of
// the model to show the numerical path end to end.
//
//	go run ./examples/adranking
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/baselines"
	"repro/internal/datasynth"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/model"
	"repro/internal/tuner"

	"repro/internal/core"
)

func main() {
	log.SetFlags(0)
	dev := gpusim.V100()

	// Model A at 1/10 scale: 100 features, half one-hot, dims 4-128.
	cfg := datasynth.Scaled(datasynth.ModelA(), 10)
	features := experiments.Features(cfg)
	dimLo, dimHi := cfg.DimRange()
	fmt.Printf("ad-ranking model: %d feature fields, dims %d-%d\n",
		len(features), dimLo, dimHi)

	sizes := datasynth.RequestSizes(6, 512, 7)
	ds, err := datasynth.GenerateDataset(cfg, 6, sizes)
	if err != nil {
		log.Fatal(err)
	}
	historical, serving := ds.Batches[:2], ds.Batches[2:]

	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned: occupancy %d blocks/SM\n\n", rf.Tuned().Occupancy)

	// End-to-end latency decomposition per system (Figure 10 style).
	pipe, err := model.NewPipeline(dev, features)
	if err != nil {
		log.Fatal(err)
	}
	systems := append(baselines.All(), rf)
	fmt.Printf("%-12s %12s %10s %10s %12s\n", "system", "embedding", "concat", "MLP", "end-to-end")
	for _, sys := range systems {
		if sys.Supports(features) != nil {
			continue // HugeCTR needs uniform dims
		}
		var emb, cc, mlp float64
		for _, b := range serving {
			r, err := pipe.MeasureE2E(sys, b)
			if err != nil {
				log.Fatal(err)
			}
			emb += r.Embedding
			cc += r.Concat
			mlp += r.MLP
		}
		fmt.Printf("%-12s %10.2fus %8.2fus %8.2fus %10.2fus\n",
			sys.Name(), emb*1e6, cc*1e6, mlp*1e6, (emb+cc+mlp)*1e6)
	}

	// Numerical path: run the CPU reference pipeline on a small slice of
	// the model (full weight matrices for 1,000+ concat dims would be
	// gigabytes; the slice keeps the example instant).
	small := datasynth.CapRows(datasynth.Scaled(cfg, 10), 4096)
	smallFeatures := experiments.Features(small)
	tables, err := datasynth.BuildTables(small)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	batch, err := datasynth.GenerateBatch(small, 4, rng)
	if err != nil {
		log.Fatal(err)
	}
	smallPipe, err := model.NewPipeline(dev, smallFeatures)
	if err != nil {
		log.Fatal(err)
	}
	scores, err := smallPipe.ForwardCPU(tables, batch, 11)
	if err != nil {
		log.Fatal(err)
	}
	perSample := len(scores) / batch.BatchSize()
	fmt.Printf("\nreference forward pass (%d features, %d samples): logits[0][:4] = %v\n",
		len(smallFeatures), batch.BatchSize(), scores[:min(4, perSample)])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
