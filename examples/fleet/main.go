// Fleet: multi-model, multi-tenant serving over one shared pool of
// simulated GPUs — the serving-layer sequel to the paper's heterogeneity
// argument. Feature heterogeneity made one schedule per model insufficient;
// a production fleet adds one more axis: several independently tuned models
// and traffic classes with different latency needs contending for the same
// accelerators.
//
// Act one is the noisy neighbor: a latency-critical interactive tenant
// shares two GPUs with a bursty bulk tenant. Under FIFO admission the bursts
// queue ahead of interactive traffic and blow up its p99; under
// priority-EDF with a bulk queue quota and load-aware early shedding the
// interactive tail stays within the non-preemptive-blocking bound (alone-p99
// plus one in-flight bulk request per worker).
//
// Act two is independent drift: two supervised models share the pool, their
// workloads drift at different times, and each detects, re-tunes in the
// background on shared capacity and hot-swaps its own schedule set — the
// neighbor's generation untouched.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelC(), 25) // 32 multi-hot features
	features := experiments.Features(cfg)

	// Compile-time: tune once on steady-state history; both acts clone this.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		historical = append(historical, b)
	}
	tune := tuner.Options{Occupancies: []int{1, 2, 4, 8}}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tune); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned %d features, occupancy %d blocks/SM\n\n", len(features), rf.Tuned().Occupancy)

	noisyNeighbor(rf, cfg)
	independentDrift(rf, cfg, tune)
}

// noisyNeighbor contrasts FIFO and priority-EDF admission for an interactive
// tenant sharing the pool with a bursty bulk tenant. Traffic is built from
// probed service times so the pressure regime is scale-independent.
func noisyNeighbor(rf *core.RecFlex, cfg *datasynth.ModelConfig) {
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	const iaSize, bulkSize = 256, 1024
	iaSvc, err := svc(0, iaSize)
	if err != nil {
		log.Fatal(err)
	}
	bulkSvc, err := svc(0, bulkSize)
	if err != nil {
		log.Fatal(err)
	}

	// Interactive requests every 4 service times; every 40 service times the
	// bulk tenant dumps a 12-request burst of 4x-sized batches.
	var streams []fleet.Stream
	var interactive []trace.Request
	for i := 0; i < 160; i++ {
		interactive = append(interactive, trace.Request{Arrival: float64(i) * 4 * iaSvc, Size: iaSize})
	}
	var bulk []trace.Request
	for b := 1; b <= 15; b++ {
		start := float64(b) * 40 * iaSvc
		for i := 0; i < 12; i++ {
			bulk = append(bulk, trace.Request{Arrival: start + float64(i)*iaSvc*0.01, Size: bulkSize})
		}
	}
	streams = []fleet.Stream{
		{Model: 0, Tenant: 0, Reqs: interactive},
		{Model: 1, Tenant: 1, Reqs: bulk},
	}
	merged := fleet.Merge(streams...)

	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "bulk", Priority: 0, Quota: 8},
	}
	models := []fleet.Model{
		{Name: "rank", Service: svc},
		{Name: "score", Service: svc},
	}
	run := func(admission fleet.AdmissionPolicy, shed float64) *fleet.Metrics {
		pool, err := fleet.NewPool(fleet.Config{
			Queue:        trace.QueuePolicy{Workers: 2, QueueDepth: 16},
			Placement:    fleet.PlacementSpread,
			Admission:    admission,
			ShedFraction: shed,
		}, models, tenants)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pool.Serve(merged)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Metrics
	}

	fmt.Printf("-- act one: noisy neighbor (interactive %.0fus/req vs bulk %.0fus bursts) --\n", iaSvc*1e6, bulkSvc*1e6)
	fifo := run(fleet.FIFO{}, 0)
	prio := run(nil, 0.5) // nil = priority-EDF over the tenants

	// The alone baseline: the interactive stream with the neighbor absent.
	alonePool, err := fleet.NewPool(fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 16},
		Placement: fleet.PlacementSpread,
	}, models, tenants)
	if err != nil {
		log.Fatal(err)
	}
	aloneRep, err := alonePool.Serve(fleet.Merge(fleet.Stream{Model: 0, Tenant: 0, Reqs: interactive}))
	if err != nil {
		log.Fatal(err)
	}
	// One bulk request can be in flight per worker when an interactive
	// request arrives and cannot be preempted: the blocking bound.
	bound := aloneRep.Metrics.Tenants[0].P99 + 2*bulkSvc

	fmt.Printf("interactive p99: alone %.0fus | fifo %.0fus | priority-edf %.0fus (bound %.0fus)\n",
		aloneRep.Metrics.Tenants[0].P99*1e6, fifo.Tenants[0].P99*1e6, prio.Tenants[0].P99*1e6, bound*1e6)
	fmt.Printf("bulk tenant under priority-edf: %s\n", prio.Tenants[1].String())
	fmt.Printf("bulk tenant under fifo:         %s\n\n", fifo.Tenants[1].String())
}

// independentDrift serves two supervised clones on the shared pool; each
// drifts at its own time and factor and must recover on its own.
func independentDrift(rf *core.RecFlex, cfg *datasynth.ModelConfig, tune tuner.Options) {
	const n = 96
	gen := func(seed int64) []trace.Request {
		reqs, err := trace.Generate(n, trace.GeneratorConfig{QPS: 40, MaxBatch: 512, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return reqs
	}
	reqsA, reqsB := gen(cfg.Seed^0x51EE7), gen(cfg.Seed^0xF00D5)
	specs := []struct {
		name    string
		factor  float64
		driftAt float64
	}{
		{"early", 4, reqsA[n/3].Arrival},
		{"late", 6, reqsB[3*n/5].Arrival},
	}

	models := make([]core.FleetModel, len(specs))
	for i, sp := range specs {
		drift := datasynth.StepDrift(sp.driftAt, sp.factor)
		src := func(t float64, size int) (*embedding.Batch, error) {
			return drift.BatchForSize(cfg, t, size)
		}
		models[i] = core.FleetModel{
			Name:   sp.name,
			Rec:    rf.Clone(),
			Source: src,
			Opts: core.ContinuousOptions{
				Supervisor: trace.SupervisorConfig{Window: 16, CheckEvery: 8, MaxRetunes: 1},
				Quantum:    64,
				PhaseOf:    drift.PhaseStart,
				Tune:       tune,
			},
		}
	}
	tenants := []fleet.TenantSpec{{Name: "online"}}
	stream := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: reqsA},
		fleet.Stream{Model: 1, Tenant: 0, Reqs: reqsB},
	)

	fmt.Println("-- act two: two models drift and re-tune independently on the shared pool --")
	res, err := core.ServeFleet(fleet.Config{Queue: trace.QueuePolicy{Workers: 2}}, models, tenants, stream)
	if err != nil {
		log.Fatal(err)
	}
	for m, sp := range specs {
		mm := res.Report.ModelReports[m].Metrics
		if len(mm.Swaps) == 0 {
			fmt.Printf("model %s (x%.0f at t=%.1fms): drift not detected\n", sp.name, sp.factor, sp.driftAt*1e3)
			continue
		}
		s := mm.Swaps[0]
		fmt.Printf("model %s (x%.0f at t=%.1fms): detected t=%.1fms -> background tune on gpu%d (%.0fms busy) -> hot-swap t=%.1fms (generation %d, interference %.2fx)\n",
			sp.name, sp.factor, sp.driftAt*1e3, s.Detected*1e3, s.Worker, s.TuneDuration*1e3, s.Swapped*1e3,
			mm.Generation, res.Interference[m])
	}
	fmt.Printf("pool: %s\n", res.Report.Metrics)
}
