// Fleet: multi-model, multi-tenant serving over one shared pool of
// simulated GPUs — the serving-layer sequel to the paper's heterogeneity
// argument. Feature heterogeneity made one schedule per model insufficient;
// a production fleet adds one more axis: several independently tuned models
// and traffic classes with different latency needs contending for the same
// accelerators.
//
// Act one is the noisy neighbor: a latency-critical interactive tenant
// shares two GPUs with a bursty bulk tenant. Under FIFO admission the bursts
// queue ahead of interactive traffic and blow up its p99; under
// priority-EDF with a bulk queue quota and load-aware early shedding the
// interactive tail stays within the non-preemptive-blocking bound (alone-p99
// plus one in-flight bulk request per worker).
//
// Act two is weighted fairness: an interactive class that overloads the pool
// on its own would starve a batch class forever under strict priority
// dispatch. WeightedFair's deficit round-robin instead guarantees the batch
// class its configured share of dispatches at a bounded p99.
//
// Act three is history-driven rebalancing: a hot and a cold model start
// sharing all four workers; the built-in RebalanceByLoad policy reads the
// recorded load history and re-partitions the pool toward the hot model
// mid-replay.
//
// Act four is independent drift: two supervised models share the pool, their
// workloads drift at different times, and each detects, re-tunes in the
// background on shared capacity and hot-swaps its own schedule set — the
// neighbor's generation untouched.
//
//	go run ./examples/fleet
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelC(), 25) // 32 multi-hot features
	features := experiments.Features(cfg)

	// Compile-time: tune once on steady-state history; both acts clone this.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		historical = append(historical, b)
	}
	tune := tuner.Options{Occupancies: []int{1, 2, 4, 8}}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tune); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned %d features, occupancy %d blocks/SM\n\n", len(features), rf.Tuned().Occupancy)

	noisyNeighbor(rf, cfg)
	weightedFair(rf, cfg)
	rebalanceByLoad(rf, cfg)
	independentDrift(rf, cfg, tune)
}

// weightedFair contrasts strict priority-EDF dispatch with deficit
// round-robin under sustained overload: the interactive class alone offers
// ~111% of the two workers' capacity, so whatever the batch class gets, it
// gets only from the dispatcher's fairness guarantee.
func weightedFair(rf *core.RecFlex, cfg *datasynth.ModelConfig) {
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	sv, err := svc(0, 256)
	if err != nil {
		log.Fatal(err)
	}

	var interactive, batch []trace.Request
	for i := 0; i < 240; i++ {
		interactive = append(interactive, trace.Request{Arrival: float64(i) * 0.45 * sv, Size: 256})
	}
	for i := 0; i < 144; i++ {
		batch = append(batch, trace.Request{Arrival: float64(i) * 0.75 * sv, Size: 256})
	}
	merged := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: interactive},
		fleet.Stream{Model: 0, Tenant: 1, Reqs: batch},
	)
	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "batch", Priority: 0, Quota: 8},
	}
	models := []fleet.Model{{Name: "rank", Service: svc}}
	run := func(admission fleet.AdmissionPolicy) *fleet.Metrics {
		pool, err := fleet.NewPool(fleet.Config{
			Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 16},
			Admission: admission,
		}, models, tenants)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pool.Serve(merged)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Metrics
	}

	wf, err := fleet.NewWeightedFair(tenants, fleet.WeightedFairConfig{
		Weights: map[int]float64{1: 3, 0: 1},
	})
	if err != nil {
		log.Fatal(err)
	}
	prio := run(nil) // nil = strict priority-EDF
	fair := run(wf)
	fmt.Printf("-- act two: weighted fairness under sustained overload (weights 3:1, batch share %.0f%%) --\n",
		100*wf.WeightShare(0))
	fmt.Printf("batch under priority-edf:  served %d/%d (p99 %.0fus) -- drain-phase leftovers only\n",
		prio.Tenants[1].Served, len(batch), prio.Tenants[1].P99*1e6)
	fmt.Printf("batch under weighted-fair: served %d/%d (p99 %.0fus), %.0f%% of all dispatches\n\n",
		fair.Tenants[1].Served, len(batch), fair.Tenants[1].P99*1e6,
		100*float64(fair.Tenants[1].Served)/float64(fair.Served))
}

// rebalanceByLoad shows the built-in load-history rebalancer re-partitioning
// the pool: both models start packed on all four workers; once the recorded
// history shows the demand skew, the hot model is handed three of them.
func rebalanceByLoad(rf *core.RecFlex, cfg *datasynth.ModelConfig) {
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	sv, err := svc(0, 256)
	if err != nil {
		log.Fatal(err)
	}

	var hot, cold []trace.Request
	for i := 0; i < 160; i++ {
		hot = append(hot, trace.Request{Arrival: float64(i) * 0.3 * sv, Size: 256})
	}
	for i := 0; i < 12; i++ {
		cold = append(cold, trace.Request{Arrival: float64(i) * 4 * sv, Size: 256})
	}
	pool, err := fleet.NewPool(fleet.Config{
		Queue:          trace.QueuePolicy{Workers: 4},
		RebalanceEvery: 8 * sv,
		Rebalance:      fleet.NewRebalanceByLoad(fleet.RebalanceByLoadConfig{}),
	}, []fleet.Model{
		{Name: "hot", Service: svc},
		{Name: "cold", Service: svc},
	}, []fleet.TenantSpec{{Name: "online"}})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := pool.Serve(fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: hot},
		fleet.Stream{Model: 1, Tenant: 0, Reqs: cold},
	))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-- act three: history-driven rebalancing (hot %d reqs vs cold %d reqs on 4 GPUs) --\n",
		len(hot), len(cold))
	fmt.Printf("rebalances applied: %d (from %d load snapshots); hot p99 %.0fus, cold p99 %.0fus\n",
		rep.Metrics.Rebalances, len(rep.Metrics.LoadHistory),
		rep.Metrics.Models[0].P99*1e6, rep.Metrics.Models[1].P99*1e6)
	for w, wk := range rep.Metrics.Workers {
		fmt.Printf("gpu%d served %d requests (util %.0f%%)\n", w, wk.Served, wk.Utilization*100)
	}
	fmt.Println()
}

// noisyNeighbor (act one) contrasts FIFO and priority-EDF admission for an
// interactive tenant sharing the pool with a bursty bulk tenant. Traffic is
// built from probed service times so the pressure regime is scale-independent.
func noisyNeighbor(rf *core.RecFlex, cfg *datasynth.ModelConfig) {
	src := func(_ float64, size int) (*embedding.Batch, error) {
		return datasynth.BatchForSize(cfg, size)
	}
	svc := rf.TimedService(src, 64, nil)
	const iaSize, bulkSize = 256, 1024
	iaSvc, err := svc(0, iaSize)
	if err != nil {
		log.Fatal(err)
	}
	bulkSvc, err := svc(0, bulkSize)
	if err != nil {
		log.Fatal(err)
	}

	// Interactive requests every 4 service times; every 40 service times the
	// bulk tenant dumps a 12-request burst of 4x-sized batches.
	var streams []fleet.Stream
	var interactive []trace.Request
	for i := 0; i < 160; i++ {
		interactive = append(interactive, trace.Request{Arrival: float64(i) * 4 * iaSvc, Size: iaSize})
	}
	var bulk []trace.Request
	for b := 1; b <= 15; b++ {
		start := float64(b) * 40 * iaSvc
		for i := 0; i < 12; i++ {
			bulk = append(bulk, trace.Request{Arrival: start + float64(i)*iaSvc*0.01, Size: bulkSize})
		}
	}
	streams = []fleet.Stream{
		{Model: 0, Tenant: 0, Reqs: interactive},
		{Model: 1, Tenant: 1, Reqs: bulk},
	}
	merged := fleet.Merge(streams...)

	tenants := []fleet.TenantSpec{
		{Name: "interactive", Priority: 1},
		{Name: "bulk", Priority: 0, Quota: 8},
	}
	models := []fleet.Model{
		{Name: "rank", Service: svc},
		{Name: "score", Service: svc},
	}
	run := func(admission fleet.AdmissionPolicy, shed float64) *fleet.Metrics {
		pool, err := fleet.NewPool(fleet.Config{
			Queue:        trace.QueuePolicy{Workers: 2, QueueDepth: 16},
			Placement:    fleet.PlacementSpread,
			Admission:    admission,
			ShedFraction: shed,
		}, models, tenants)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := pool.Serve(merged)
		if err != nil {
			log.Fatal(err)
		}
		return rep.Metrics
	}

	fmt.Printf("-- act one: noisy neighbor (interactive %.0fus/req vs bulk %.0fus bursts) --\n", iaSvc*1e6, bulkSvc*1e6)
	fifo := run(fleet.FIFO{}, 0)
	prio := run(nil, 0.5) // nil = priority-EDF over the tenants

	// The alone baseline: the interactive stream with the neighbor absent.
	alonePool, err := fleet.NewPool(fleet.Config{
		Queue:     trace.QueuePolicy{Workers: 2, QueueDepth: 16},
		Placement: fleet.PlacementSpread,
	}, models, tenants)
	if err != nil {
		log.Fatal(err)
	}
	aloneRep, err := alonePool.Serve(fleet.Merge(fleet.Stream{Model: 0, Tenant: 0, Reqs: interactive}))
	if err != nil {
		log.Fatal(err)
	}
	// One bulk request can be in flight per worker when an interactive
	// request arrives and cannot be preempted: the blocking bound.
	bound := aloneRep.Metrics.Tenants[0].P99 + 2*bulkSvc

	fmt.Printf("interactive p99: alone %.0fus | fifo %.0fus | priority-edf %.0fus (bound %.0fus)\n",
		aloneRep.Metrics.Tenants[0].P99*1e6, fifo.Tenants[0].P99*1e6, prio.Tenants[0].P99*1e6, bound*1e6)
	fmt.Printf("bulk tenant under priority-edf: %s\n", prio.Tenants[1].String())
	fmt.Printf("bulk tenant under fifo:         %s\n\n", fifo.Tenants[1].String())
}

// independentDrift serves two supervised clones on the shared pool; each
// drifts at its own time and factor and must recover on its own.
func independentDrift(rf *core.RecFlex, cfg *datasynth.ModelConfig, tune tuner.Options) {
	const n = 96
	gen := func(seed int64) []trace.Request {
		reqs, err := trace.Generate(n, trace.GeneratorConfig{QPS: 40, MaxBatch: 512, Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return reqs
	}
	reqsA, reqsB := gen(cfg.Seed^0x51EE7), gen(cfg.Seed^0xF00D5)
	specs := []struct {
		name    string
		factor  float64
		driftAt float64
	}{
		{"early", 4, reqsA[n/3].Arrival},
		{"late", 6, reqsB[3*n/5].Arrival},
	}

	models := make([]core.FleetModel, len(specs))
	for i, sp := range specs {
		drift := datasynth.StepDrift(sp.driftAt, sp.factor)
		src := func(t float64, size int) (*embedding.Batch, error) {
			return drift.BatchForSize(cfg, t, size)
		}
		models[i] = core.FleetModel{
			Name:   sp.name,
			Rec:    rf.Clone(),
			Source: src,
			Opts: core.ContinuousOptions{
				Supervisor: trace.SupervisorConfig{Window: 16, CheckEvery: 8, MaxRetunes: 1},
				Quantum:    64,
				PhaseOf:    drift.PhaseStart,
				Tune:       tune,
			},
		}
	}
	tenants := []fleet.TenantSpec{{Name: "online"}}
	stream := fleet.Merge(
		fleet.Stream{Model: 0, Tenant: 0, Reqs: reqsA},
		fleet.Stream{Model: 1, Tenant: 0, Reqs: reqsB},
	)

	fmt.Println("-- act four: two models drift and re-tune independently on the shared pool --")
	res, err := core.ServeFleet(fleet.Config{Queue: trace.QueuePolicy{Workers: 2}}, models, tenants, stream)
	if err != nil {
		log.Fatal(err)
	}
	for m, sp := range specs {
		mm := res.Report.ModelReports[m].Metrics
		if len(mm.Swaps) == 0 {
			fmt.Printf("model %s (x%.0f at t=%.1fms): drift not detected\n", sp.name, sp.factor, sp.driftAt*1e3)
			continue
		}
		s := mm.Swaps[0]
		fmt.Printf("model %s (x%.0f at t=%.1fms): detected t=%.1fms -> background tune on gpu%d (%.0fms busy) -> hot-swap t=%.1fms (generation %d, interference %.2fx)\n",
			sp.name, sp.factor, sp.driftAt*1e3, s.Detected*1e3, s.Worker, s.TuneDuration*1e3, s.Swapped*1e3,
			mm.Generation, res.Interference[m])
	}
	fmt.Printf("pool: %s\n", res.Report.Metrics)
}
