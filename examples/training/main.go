// Training: the paper notes "there is no fundamental reason limiting RecFlex
// from optimizing the training process". This example runs a real training
// loop through the fused kernels: forward pass (heterogeneous fused
// embedding), MSE loss against target vectors, fused backward pass (scattered
// gradient accumulation), and SGD updates on the embedding tables. The loss
// falls monotonically — the functional gradients, not just the cost model,
// are exact.
//
//	go run ./examples/training
package main

import (
	"fmt"
	"log"
	"math/rand"

	recflex "repro"
)

func main() {
	log.SetFlags(0)
	dev := recflex.V100()

	type spec struct {
		name string
		dim  int
		rows int
		pf   int
	}
	specs := []spec{
		{"user", 16, 512, 1},
		{"history", 16, 1024, 12},
		{"context", 8, 256, 4},
	}
	features := make([]recflex.FeatureInfo, len(specs))
	tables := make([]*recflex.Table, len(specs))
	for i, sp := range specs {
		features[i] = recflex.FeatureInfo{Name: sp.name, Dim: sp.dim, TableRows: sp.rows, Pool: recflex.PoolSum}
		t, err := recflex.NewTable(sp.name, sp.rows, sp.dim, uint64(i+100))
		if err != nil {
			log.Fatal(err)
		}
		tables[i] = t
	}

	rng := rand.New(rand.NewSource(7))
	makeBatch := func(size int) *recflex.Batch {
		b := &recflex.Batch{}
		for _, sp := range specs {
			perSample := make([][]int32, size)
			for s := range perSample {
				ids := make([]int32, sp.pf)
				for j := range ids {
					ids[j] = int32(rng.Intn(sp.rows))
				}
				perSample[s] = ids
			}
			b.Features = append(b.Features, recflex.NewFeatureBatch(perSample))
		}
		return b
	}

	opt := recflex.New(dev, features)
	if err := opt.Tune([]*recflex.Batch{makeBatch(128)}, recflex.TuneOptions{Occupancies: []int{2, 4, 8}}); err != nil {
		log.Fatal(err)
	}

	// Fixed batch and fixed random targets: the tables should memorize them.
	const batchSize = 64
	batch := makeBatch(batchSize)
	targets := make([][]float32, len(specs))
	for f, sp := range specs {
		targets[f] = make([]float32, batchSize*sp.dim)
		for i := range targets[f] {
			targets[f][i] = float32(rng.NormFloat64())
		}
	}

	const lr = 1.0
	fmt.Println("step    loss        fwd kernel   bwd kernel")
	for step := 0; step < 10; step++ {
		fu, err := opt.CompileBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		outs, fwdSim, err := fu.Run(tables, batch)
		if err != nil {
			log.Fatal(err)
		}

		// MSE loss and its gradient w.r.t. the pooled outputs.
		var loss float64
		n := 0
		upstream := make([][]float32, len(specs))
		for f := range specs {
			upstream[f] = make([]float32, len(outs[f]))
			for i := range outs[f] {
				d := outs[f][i] - targets[f][i]
				loss += float64(d) * float64(d)
				upstream[f][i] = 2 * d
				n++
			}
		}
		loss /= float64(n)

		bp, err := fu.Backward(batch)
		if err != nil {
			log.Fatal(err)
		}
		bwdSim, err := bp.Simulate()
		if err != nil {
			log.Fatal(err)
		}
		grads, err := bp.Execute(batch, upstream)
		if err != nil {
			log.Fatal(err)
		}

		// SGD update.
		for f := range tables {
			for i := range grads[f] {
				tables[f].Data[i] -= lr * grads[f][i] / float32(n)
			}
		}
		fmt.Printf("%4d    %.6f    %8.2fus   %8.2fus\n", step, loss, fwdSim.Time*1e6, bwdSim.Time*1e6)
	}
}
