// Scalability: tune a model with an extremely large number of features (the
// paper's 10,000-feature dataset, scaled by -scale) and compare the fused
// kernel against TorchRec, reporting tuning wall-clock — the §VI-B and §VI-E
// studies as a runnable program.
//
//	go run ./examples/scalability -scale 50      # 200 features, seconds
//	go run ./examples/scalability -scale 10      # 1,000 features, minutes
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	scale := flag.Int("scale", 50, "feature-count divisor of the 10,000-feature dataset")
	workers := flag.Int("workers", 0, "tuning parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.Scalability10k(), *scale)
	features := experiments.Features(cfg)
	fmt.Printf("scalability dataset: %d features\n", len(features))

	sizes := datasynth.RequestSizes(5, 512, cfg.Seed^0xBA7C4)
	ds, err := datasynth.GenerateDataset(cfg, 5, sizes)
	if err != nil {
		log.Fatal(err)
	}
	historical, serving := ds.Batches[:2], ds.Batches[2:]

	start := time.Now()
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{Parallelism: *workers}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned in %v (occupancy %d blocks/SM)\n",
		time.Since(start).Round(time.Millisecond), rf.Tuned().Occupancy)

	var mine, torch float64
	tr := baselines.TorchRec{}
	for _, b := range serving {
		m, err := rf.Measure(dev, features, b)
		if err != nil {
			log.Fatal(err)
		}
		t, err := tr.Measure(dev, features, b)
		if err != nil {
			log.Fatal(err)
		}
		mine += m
		torch += t
	}
	fmt.Printf("RecFlex %.2fus vs TorchRec %.2fus -> speedup %.2fx (paper: 4.2x at 10,000 features)\n",
		mine*1e6, torch*1e6, torch/mine)
}
