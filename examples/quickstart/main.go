// Quickstart: define a small heterogeneous embedding model, tune it with
// RecFlex, run a batch through the fused kernel, and compare against the
// TorchRec baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	recflex "repro"
)

func main() {
	log.SetFlags(0)
	dev := recflex.V100()

	// A miniature recommendation model: one-hot ID features next to
	// multi-hot history features, small and large embedding dimensions —
	// the feature heterogeneity RecFlex exploits.
	type spec struct {
		name string
		dim  int
		rows int
		pf   func(*rand.Rand) int // pooling factor per sample
	}
	rng := rand.New(rand.NewSource(42))
	specs := []spec{
		{"user_id", 32, 1 << 14, func(*rand.Rand) int { return 1 }},
		{"item_id", 32, 1 << 15, func(*rand.Rand) int { return 1 }},
		{"gender", 4, 4, func(*rand.Rand) int { return 1 }},
		{"click_history", 16, 1 << 14, func(r *rand.Rand) int { return 20 + r.Intn(60) }},
		{"search_terms", 8, 1 << 13, func(r *rand.Rand) int { return r.Intn(12) }},
		{"watched_videos", 64, 1 << 14, func(r *rand.Rand) int { return 50 + r.Intn(150) }},
	}

	features := make([]recflex.FeatureInfo, len(specs))
	tables := make([]*recflex.Table, len(specs))
	for i, sp := range specs {
		features[i] = recflex.FeatureInfo{Name: sp.name, Dim: sp.dim, TableRows: sp.rows, Pool: recflex.PoolSum}
		t, err := recflex.NewTable(sp.name, sp.rows, sp.dim, uint64(i))
		if err != nil {
			log.Fatal(err)
		}
		tables[i] = t
	}

	makeBatch := func(size int) *recflex.Batch {
		b := &recflex.Batch{}
		for _, sp := range specs {
			perSample := make([][]int32, size)
			for s := range perSample {
				ids := make([]int32, sp.pf(rng))
				for j := range ids {
					ids[j] = int32(rng.Intn(sp.rows))
				}
				perSample[s] = ids
			}
			b.Features = append(b.Features, recflex.NewFeatureBatch(perSample))
		}
		return b
	}

	// Tune on sampled historical batches (compile-time), then serve.
	historical := []*recflex.Batch{makeBatch(256), makeBatch(384)}
	opt := recflex.New(dev, features)
	if err := opt.Tune(historical, recflex.TuneOptions{}); err != nil {
		log.Fatal(err)
	}
	tuned := opt.Tuned()
	fmt.Printf("tuned occupancy: %d blocks/SM\n", tuned.Occupancy)
	for f, c := range tuned.Choices {
		fmt.Printf("  %-16s dim %3d -> %s\n", specs[f].name, specs[f].dim, c.Name())
	}

	// Serve one request: simulate the fused kernel and compute real outputs.
	batch := makeBatch(256)
	outs, sim, err := opt.Run(tables, batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfused kernel: %.2fus, %.0f GB/s, %.1f active threads/warp\n",
		sim.Time*1e6, sim.Counters.MemoryThroughput/1e9, sim.Counters.AvgActiveThreadsPerWarp)
	fmt.Printf("outputs: %d features, %d samples, first vector %v...\n",
		len(outs), batch.BatchSize(), outs[0][:4])

	// Compare against the strongest baseline.
	for _, base := range recflex.Baselines() {
		if base.Supports(features) != nil {
			continue
		}
		sec, err := base.Measure(dev, features, batch)
		if err != nil {
			log.Fatal(err)
		}
		mine, err := opt.Measure(dev, features, batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %.2fus -> RecFlex speedup %.2fx\n", base.Name(), sec*1e6, sec/mine)
	}
}
