// Continuous: the online serving loop of §IV-A3 end-to-end. A Poisson
// request trace drifts mid-stream (pooling factors scale 4x), and the
// supervisor watches a sliding window of admitted requests, detects the
// shift with the drift statistic, re-tunes the schedules in the background
// on one of the two simulated GPUs — admission never pauses — and hot-swaps
// the fresh schedule set atomically: requests in flight finish on the
// generation they arrived under, later admissions are served by the new one.
// The same trace replayed with the schedules frozen gives the stale
// baseline the post-swap latency split is measured against.
//
// A second act shows the guarded promotion: a deliberately poisoned re-tune
// (3x slower than the live schedules) goes live behind a canary window, the
// supervisor measures it worse than the pre-swap baseline over matched size
// quartiles, and rolls the promotion back to the old schedules — under a
// fresh, strictly higher generation id.
//
//	go run ./examples/continuous
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/datasynth"
	"repro/internal/embedding"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/trace"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelC(), 25) // 32 multi-hot features
	features := experiments.Features(cfg)

	// Compile-time: tune on steady-state history.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var historical []*embedding.Batch
	for _, n := range []int{256, 384} {
		b, err := datasynth.GenerateBatch(cfg, n, rng)
		if err != nil {
			log.Fatal(err)
		}
		historical = append(historical, b)
	}
	rf := core.New(dev, features)
	if err := rf.Tune(historical, tuner.Options{Occupancies: []int{1, 2, 4, 8}}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned %d features, occupancy %d blocks/SM\n", len(features), rf.Tuned().Occupancy)

	// A Poisson trace whose pooling factors scale 4x a third of the way in.
	reqs, err := trace.Generate(128, trace.GeneratorConfig{
		QPS: 40, MaxBatch: 512, Seed: cfg.Seed ^ 0xD21F7,
	})
	if err != nil {
		log.Fatal(err)
	}
	drift := datasynth.StepDrift(reqs[len(reqs)/3].Arrival, 4)
	src := func(t float64, size int) (*embedding.Batch, error) {
		return drift.BatchForSize(cfg, t, size)
	}
	fmt.Printf("replaying %d requests on 2 GPUs; pooling factors x4 from t=%.1fms\n\n",
		len(reqs), drift.Steps[0].At*1e3)

	opts := core.ContinuousOptions{
		Supervisor: trace.SupervisorConfig{
			Server:     trace.ServerConfig{Workers: 2},
			Window:     16,
			CheckEvery: 8,
			MaxRetunes: 1,
		},
		Quantum: 64,
		PhaseOf: drift.PhaseStart,
		Tune:    tuner.Options{Occupancies: []int{1, 2, 4, 8}},
	}

	// The continuous loop: detect, background-tune, hot-swap.
	live := rf.Clone()
	rep, err := live.ServeContinuous(reqs, src, opts)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range rep.Metrics.Swaps {
		fmt.Printf("generation %d: drift detected t=%.1fms -> background tune on gpu%d (%.0fms busy) -> hot-swap t=%.1fms\n",
			s.Generation, s.Detected*1e3, s.Worker, s.TuneDuration*1e3, s.Swapped*1e3)
	}
	if len(rep.Metrics.Swaps) == 0 {
		fmt.Println("no drift detected; serving stayed on generation 0")
		return
	}

	// The counterfactual: the same trace with the schedules frozen.
	stale, err := rf.ServeFrozen(reqs, src, opts)
	if err != nil {
		log.Fatal(err)
	}
	freshMean, staleMean, n := core.PostSwapSplit(rep, stale)
	if n == 0 {
		fmt.Println("swap landed after the last request; nothing to compare")
		return
	}
	fmt.Printf("\npost-swap latency over %d requests: stale %.2fus vs swapped %.2fus (%.3fx recovery)\n",
		n, staleMean*1e6, freshMean*1e6, staleMean/freshMean)

	// Per-request generation stamps: who served what.
	gen0, gen1 := 0, 0
	for _, g := range rep.Generations {
		if g == 0 {
			gen0++
		} else {
			gen1++
		}
	}
	fmt.Printf("generation stamps: %d requests on generation 0, %d on generation 1\n", gen0, gen1)
	fmt.Printf("tune occupied a worker for %.0fms of the %.0fms makespan (serving utilization %.1f%%)\n",
		rep.Metrics.TuneBusy*1e3, rep.Metrics.Makespan*1e3, rep.Utilization*100)
	fmt.Printf("counters: %s\n", rep.Metrics)

	// Act two: the guarded promotion. The same trace, but this re-tune is
	// deliberately poisoned — it installs a service 3x slower than the live
	// schedules, the failure mode of a tune that overfit a noisy drift
	// window. With a canary window configured, the swap still goes live, but
	// provisionally: the supervisor compares the new generation's served
	// sojourns against the outgoing generation's recent completions over
	// matched size quartiles, measures the degradation, and rolls the
	// promotion back — a forward swap to a fresh generation reusing the old
	// schedules.
	fmt.Println("\n-- guarded promotion: a poisoned re-tune --")
	base := rf.TimedService(src, opts.Quantum, opts.PhaseOf)
	driftAt := drift.Steps[0].At
	detect := func(win []trace.WindowEntry) (bool, error) {
		return win[len(win)-1].Time >= driftAt, nil
	}
	poisoned := func(int, []trace.WindowEntry) (trace.TimedServiceFunc, error) {
		return func(t float64, size int) (float64, error) {
			s, err := base(t, size)
			return s * 3, err
		}, nil
	}
	gcfg := opts.Supervisor
	gcfg.CanaryWindow = 8
	gcfg.RollbackMargin = 0.25
	guard, err := trace.NewSupervisor(gcfg, base, detect, poisoned)
	if err != nil {
		log.Fatal(err)
	}
	grep, err := guard.Run(reqs)
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range grep.Metrics.Swaps {
		if s.Rollback {
			promo := grep.Metrics.Swaps[i-1]
			fmt.Printf("generation %d: canary %.2fus vs baseline %.2fus (%.2fx worse) -> rolled back to generation %d schedules at t=%.1fms\n",
				promo.Generation, promo.CanaryMean*1e6, promo.BaselineMean*1e6,
				promo.CanaryMean/promo.BaselineMean, s.Reinstated, s.Swapped*1e3)
			continue
		}
		fmt.Printf("generation %d: poisoned tune hot-swapped at t=%.1fms (canary open)\n",
			s.Generation, s.Swapped*1e3)
	}
	if grep.Metrics.Rollbacks == 0 {
		fmt.Println("canary did not catch the poisoned tune (unexpected)")
		return
	}
	// Latency per generation shows the full arc: healthy, poisoned, reverted.
	sums := map[int]float64{}
	counts := map[int]int{}
	for i, g := range grep.Generations {
		sums[g] += grep.Sojourn[i]
		counts[g]++
	}
	for g := 0; g <= grep.Metrics.Generation; g++ {
		if counts[g] == 0 {
			continue
		}
		note := ""
		switch g {
		case 1:
			note = "  <- poisoned"
		case 2:
			note = "  <- rolled back to generation 0 schedules"
		}
		fmt.Printf("generation %d: %3d requests, mean sojourn %8.2fus%s\n",
			g, counts[g], sums[g]/float64(counts[g])*1e6, note)
	}
}
