// Multi-GPU: the Discussion-section extension (§VII) — a model whose
// embedding tables exceed one GPU's memory is sharded across devices with a
// workload-balancing placement, each shard tuned by its own RecFlex instance.
// The example compares placement heuristics and shows the per-GPU latency
// breakdown.
//
//	go run ./examples/multigpu -gpus 4
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/datasynth"
	"repro/internal/experiments"
	"repro/internal/gpusim"
	"repro/internal/placement"
	"repro/internal/tuner"
)

func main() {
	log.SetFlags(0)
	gpus := flag.Int("gpus", 4, "number of GPUs")
	flag.Parse()

	dev := gpusim.V100()
	cfg := datasynth.Scaled(datasynth.ModelA(), 20) // 50 heterogeneous features
	features := experiments.Features(cfg)

	sizes := datasynth.RequestSizes(5, 512, cfg.Seed)
	ds, err := datasynth.GenerateDataset(cfg, 5, sizes)
	if err != nil {
		log.Fatal(err)
	}
	historical, serving := ds.Batches[:2], ds.Batches[2:]

	stats, err := placement.CollectStats(features, historical)
	if err != nil {
		log.Fatal(err)
	}
	var tableBytes int64
	for _, s := range stats {
		tableBytes += s.Bytes
	}
	fmt.Printf("model: %d features, %.1f MB of embedding tables, %d GPUs\n\n",
		len(features), float64(tableBytes)/1e6, *gpus)

	for _, strat := range []placement.Strategy{placement.LPT, placement.RoundRobin, placement.CapacityOnly} {
		p, err := placement.Place(stats, *gpus, 0, strat)
		if err != nil {
			log.Fatal(err)
		}
		m, err := placement.NewMultiGPU(dev, features, p)
		if err != nil {
			log.Fatal(err)
		}
		if err := m.Tune(historical, tuner.Options{}); err != nil {
			log.Fatal(err)
		}
		var makespan, gather float64
		perGPU := make([]float64, *gpus)
		for _, b := range serving {
			r, err := m.Measure(b)
			if err != nil {
				log.Fatal(err)
			}
			makespan += r.Makespan
			gather += r.Gather
			for g := range r.PerGPU {
				perGPU[g] += r.PerGPU[g]
			}
		}
		fmt.Printf("%-14s imbalance %.2f | makespan %8.2fus gather %6.2fus | per-GPU:",
			strat, placement.LoadImbalance(p, stats), makespan*1e6, gather*1e6)
		for g := range perGPU {
			fmt.Printf(" %7.2fus", perGPU[g]*1e6)
		}
		fmt.Println()
	}
}
